// Node-revocation subsystem (docs/REVOKE.md): seeded lifetime models
// produce deterministic FaultPlan-compatible schedules, and the
// RevocationManager spends each notice window rescuing work — Natjam
// checkpoint-with-evacuation, CRIU migration, replica steering. The
// regression that matters most: a warning arriving after its node
// already died (out-of-order plan) is a counted no-op, never a wedge.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "revoke/lifetime.hpp"
#include "revoke/manager.hpp"
#include "sched/fifo.hpp"
#include "trace/names.hpp"
#include "workload/profiles.hpp"

namespace osap::revoke {
namespace {

// --- lifetime models --------------------------------------------------------

TEST(Lifetime, ModelNamesRoundTrip) {
  for (LifetimeModel m : {LifetimeModel::None, LifetimeModel::Exponential,
                          LifetimeModel::Weibull, LifetimeModel::TraceReplay,
                          LifetimeModel::Windows}) {
    EXPECT_EQ(parse_lifetime_model(to_string(m)), m);
  }
  EXPECT_THROW((void)parse_lifetime_model("spot"), SimError);
}

TEST(Lifetime, ReactionNamesRoundTrip) {
  for (Reaction r : {Reaction::None, Reaction::Checkpoint, Reaction::Migrate}) {
    EXPECT_EQ(parse_reaction(to_string(r)), r);
  }
  EXPECT_THROW((void)parse_reaction("pray"), SimError);
}

LifetimeOptions exp_opts(double mix, std::uint64_t seed) {
  LifetimeOptions opts;
  opts.model = LifetimeModel::Exponential;
  opts.node_mix = mix;
  opts.mean_lifetime_s = 300;
  opts.warning_s = 60;
  opts.seed = seed;
  return opts;
}

TEST(Lifetime, PlanIsDeterministicPerSeedAndDivergesAcrossSeeds) {
  const RevocationPlan a = plan_revocations(8, exp_opts(0.5, 7));
  const RevocationPlan b = plan_revocations(8, exp_opts(0.5, 7));
  ASSERT_EQ(a.revocations.size(), b.revocations.size());
  for (std::size_t i = 0; i < a.revocations.size(); ++i) {
    EXPECT_EQ(a.revocations[i].at, b.revocations[i].at);  // bit-exact
    EXPECT_EQ(a.revocations[i].node, b.revocations[i].node);
  }
  const RevocationPlan c = plan_revocations(8, exp_opts(0.5, 8));
  bool any_differs = c.revocations.size() != a.revocations.size();
  for (std::size_t i = 0; !any_differs && i < a.revocations.size(); ++i) {
    any_differs = a.revocations[i].at != c.revocations[i].at;
  }
  EXPECT_TRUE(any_differs) << "seed change did not reroute the schedule";
}

TEST(Lifetime, TransientNodesOccupyTheTopOfTheIndexRange) {
  const RevocationPlan plan = plan_revocations(8, exp_opts(0.5, 7));
  ASSERT_EQ(plan.transient.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(plan.transient[i], i >= 4) << "node " << i;
  EXPECT_FALSE(plan.is_transient(NodeId{0}));  // the default HDFS writer
  EXPECT_TRUE(plan.is_transient(NodeId{7}));
  EXPECT_FALSE(plan.is_transient(NodeId{12}));  // out of range
}

TEST(Lifetime, MixZeroAndModelNoneScheduleNothing) {
  EXPECT_TRUE(plan_revocations(4, exp_opts(0, 7)).revocations.empty());
  LifetimeOptions none = exp_opts(0.5, 7);
  none.model = LifetimeModel::None;
  const RevocationPlan plan = plan_revocations(4, none);
  EXPECT_TRUE(plan.revocations.empty());
  for (const double death : plan.death_at) EXPECT_EQ(death, RevocationPlan::kSurvives);
}

TEST(Lifetime, MixValidationRejectsNonsense) {
  EXPECT_THROW((void)plan_revocations(4, exp_opts(1.5, 7)), SimError);
  EXPECT_THROW((void)plan_revocations(4, exp_opts(-0.1, 7)), SimError);
  LifetimeOptions bad_mean = exp_opts(0.5, 7);
  bad_mean.mean_lifetime_s = 0;
  EXPECT_THROW((void)plan_revocations(4, bad_mean), SimError);
  LifetimeOptions bad_warning = exp_opts(0.5, 7);
  bad_warning.warning_s = 0;
  EXPECT_THROW((void)plan_revocations(4, bad_warning), SimError);
}

TEST(Lifetime, TraceReplayCyclesTheEmpiricalTable) {
  LifetimeOptions opts = exp_opts(1.0, 7);
  opts.model = LifetimeModel::TraceReplay;
  opts.mean_lifetime_s = 100;
  opts.horizon_s = 1e9;
  const RevocationPlan plan = plan_revocations(4, opts);
  ASSERT_EQ(plan.revocations.size(), 4u);
  // Table head: 0.18, 1.35, 0.52, 2.40 fractions of the mean.
  EXPECT_DOUBLE_EQ(plan.revocations[0].at, 18.0);
  EXPECT_DOUBLE_EQ(plan.revocations[1].at, 135.0);
  EXPECT_DOUBLE_EQ(plan.revocations[2].at, 52.0);
  EXPECT_DOUBLE_EQ(plan.revocations[3].at, 240.0);
}

TEST(Lifetime, WindowsModelLandsEveryDeathInsideAWindow) {
  LifetimeOptions opts = exp_opts(1.0, 21);
  opts.model = LifetimeModel::Windows;
  opts.mean_lifetime_s = 500;
  opts.window_period_s = 600;
  opts.window_open_s = 120;
  opts.horizon_s = 1e9;
  const RevocationPlan plan = plan_revocations(16, opts);
  ASSERT_FALSE(plan.revocations.empty());
  for (const fault::NodeRevocation& r : plan.revocations) {
    const double phase = std::fmod(r.at, opts.window_period_s);
    EXPECT_LE(phase, opts.window_open_s) << "death at t=" << r.at << " fell between windows";
  }
}

TEST(Lifetime, ModelsProduceDistinctSchedules) {
  LifetimeOptions exp = exp_opts(1.0, 7);
  LifetimeOptions weibull = exp;
  weibull.model = LifetimeModel::Weibull;
  LifetimeOptions trace = exp;
  trace.model = LifetimeModel::TraceReplay;
  const RevocationPlan pe = plan_revocations(6, exp);
  const RevocationPlan pw = plan_revocations(6, weibull);
  const RevocationPlan pt = plan_revocations(6, trace);
  EXPECT_NE(pe.death_at, pw.death_at);
  EXPECT_NE(pe.death_at, pt.death_at);
  EXPECT_NE(pw.death_at, pt.death_at);
}

TEST(Lifetime, CostAccruesClassRateUntilDeathOrRunEnd) {
  RevocationPlan plan;
  plan.on_demand_rate = 1.0;
  plan.transient_rate = 0.3;
  plan.transient = {false, true, true};
  plan.death_at = {RevocationPlan::kSurvives, 1800.0, RevocationPlan::kSurvives};
  // end 3600 s: on-demand node a full hour, dead transient half an hour,
  // surviving transient a full hour at the discount.
  EXPECT_DOUBLE_EQ(plan.cost(3600.0), 1.0 + 0.3 * 0.5 + 0.3);
  // A shorter run caps every node at the run end.
  EXPECT_DOUBLE_EQ(plan.cost(900.0), 0.25 + 0.3 * 0.25 + 0.3 * 0.25);
  // All-on-demand baseline: node count x duration.
  RevocationPlan baseline;
  baseline.transient = {false, false};
  baseline.death_at = {RevocationPlan::kSurvives, RevocationPlan::kSurvives};
  EXPECT_DOUBLE_EQ(baseline.cost(3600.0), 2.0);
}

TEST(Lifetime, MergeIntoAppendsToAnExistingPlan) {
  fault::FaultPlan fplan = fault::parse_fault_plan("crash 40 0\n");
  const RevocationPlan rplan = plan_revocations(4, exp_opts(0.5, 7));
  rplan.merge_into(fplan);
  EXPECT_EQ(fplan.revocations.size(), rplan.revocations.size());
  EXPECT_EQ(fplan.size(), 1u + rplan.revocations.size());
}

// --- the manager's reactions ------------------------------------------------

std::uint64_t counter(Cluster& cluster, const char* name) {
  return cluster.sim().trace().counters().value(name);
}

/// Two single-slot nodes, node 1 transient and doomed; four sequential
/// light mappers keep both nodes busy when the warning lands.
struct RevocationRig {
  explicit RevocationRig(Reaction reaction, const std::string& scripted = "",
                         double death = 60.0, double warning = 30.0) {
    ClusterConfig cfg = paper_cluster();
    cfg.num_nodes = 2;
    cfg.hadoop.tracker_expiry = seconds(9);
    cfg.hadoop.expiry_check_interval = seconds(1);
    cfg.seed = 11;
    cluster = std::make_unique<Cluster>(cfg);
    cluster->set_scheduler(std::make_unique<FifoScheduler>());
    for (int i = 0; i < 4; ++i) {
      cluster->create_input("in" + std::to_string(i), 128 * MiB, cluster->node(i % 2));
      cluster->submit(single_task_job("map" + std::to_string(i), 0, light_map_task()));
    }
    plan.transient = {false, true};
    plan.death_at = {RevocationPlan::kSurvives, death};
    plan.revocations.push_back({death, cluster->node(1), warning});
    fault::FaultPlan fplan =
        scripted.empty() ? fault::FaultPlan{} : fault::parse_fault_plan(scripted);
    plan.merge_into(fplan);
    injector = std::make_unique<fault::FaultInjector>(*cluster, std::move(fplan));
    manager = std::make_unique<RevocationManager>(*cluster, *injector, plan, reaction);
  }

  RevocationPlan plan;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<RevocationManager> manager;
};

TEST(Manager, CheckpointOnWarningEvacuatesAndResumesElsewhere) {
  RevocationRig rig(Reaction::Checkpoint);
  rig.cluster->run_until(3000.0);
  EXPECT_TRUE(rig.cluster->job_tracker().all_jobs_done());
  EXPECT_EQ(counter(*rig.cluster, trace::names::kRevokeWarningsHandled), 1u);
  EXPECT_EQ(counter(*rig.cluster, trace::names::kRevokeWarningsLate), 0u);
  // The task running on node 1 at t=30 was checkpoint-preempted, its
  // checkpoint evacuated off the doomed disk, and the resume relaunched
  // it on the survivor.
  EXPECT_GE(counter(*rig.cluster, trace::names::kRevokeDrainCheckpoints), 1u);
  EXPECT_GE(counter(*rig.cluster, trace::names::kRevokeEvacuations), 1u);
  EXPECT_GE(counter(*rig.cluster, trace::names::kJtCheckpointsEvacuated), 1u);
  EXPECT_EQ(counter(*rig.cluster, trace::names::kFaultRevocationWarnings), 1u);
  EXPECT_EQ(counter(*rig.cluster, trace::names::kFaultRevocations), 1u);
}

TEST(Manager, MigrateReactionShipsTheFrozenImageToTheSurvivor) {
  RevocationRig rig(Reaction::Migrate);
  rig.cluster->run_until(3000.0);
  EXPECT_TRUE(rig.cluster->job_tracker().all_jobs_done());
  EXPECT_EQ(counter(*rig.cluster, trace::names::kRevokeWarningsHandled), 1u);
  EXPECT_GE(counter(*rig.cluster, trace::names::kRevokeDrainMigrations), 1u);
  EXPECT_GE(counter(*rig.cluster, trace::names::kRevokeMigrationsDone), 1u);
}

TEST(Manager, ReactionNoneOnlyDrainsAssignments) {
  RevocationRig rig(Reaction::None);
  rig.cluster->run_until(3000.0);
  EXPECT_TRUE(rig.cluster->job_tracker().all_jobs_done());
  EXPECT_EQ(counter(*rig.cluster, trace::names::kRevokeWarningsHandled), 1u);
  EXPECT_EQ(counter(*rig.cluster, trace::names::kRevokeDrainCheckpoints), 0u);
  EXPECT_EQ(counter(*rig.cluster, trace::names::kRevokeDrainMigrations), 0u);
  EXPECT_EQ(counter(*rig.cluster, trace::names::kRevokeEvacuations), 0u);
  // The doomed tracker stopped taking work the moment the warning landed.
  EXPECT_GE(counter(*rig.cluster, trace::names::kJtTrackersDraining), 1u);
}

TEST(Manager, WarningAfterTheNodeAlreadyCrashedIsACountedNoOp) {
  // Out-of-order plan: a scripted crash kills node 1 at t=5, long before
  // its revocation warning fires at t=30 (death 60, notice 30). The
  // warning must be dropped — counted late — without wedging the
  // checkpoint drain, and the scheduled death must not tear the node
  // down a second time.
  RevocationRig rig(Reaction::Checkpoint, "crash 5 1\n");
  rig.cluster->run_until(3000.0);
  EXPECT_TRUE(rig.cluster->job_tracker().all_jobs_done()) << "late warning wedged the drain";
  EXPECT_EQ(counter(*rig.cluster, trace::names::kRevokeWarningsLate), 1u);
  EXPECT_EQ(counter(*rig.cluster, trace::names::kRevokeWarningsHandled), 0u);
  EXPECT_EQ(counter(*rig.cluster, trace::names::kRevokeDrainCheckpoints), 0u);
  // The injector fired the warning but the death was the crash's: the
  // revocation teardown observed the node already gone.
  EXPECT_EQ(counter(*rig.cluster, trace::names::kFaultRevocationWarnings), 1u);
  EXPECT_EQ(counter(*rig.cluster, trace::names::kFaultRevocations), 0u);
}

TEST(Manager, CostComesFromThePlanAndTheReactionIsReported) {
  RevocationRig rig(Reaction::Checkpoint);
  EXPECT_EQ(rig.manager->reaction(), Reaction::Checkpoint);
  // Before the run the clock is 0; cost at a chosen horizon folds the
  // doomed node's death in.
  EXPECT_DOUBLE_EQ(rig.manager->cost(3600.0), 1.0 + 0.3 * 60.0 / 3600.0);
  EXPECT_TRUE(rig.manager->plan().is_transient(NodeId{1}));
}

}  // namespace
}  // namespace osap::revoke
