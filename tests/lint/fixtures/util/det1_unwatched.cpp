// Outside the watched layer dirs DET-1 does not apply: tools and tests
// may traverse hash order when the result feeds no simulation decision.
#include <unordered_map>

struct Unwatched {
  std::unordered_map<int, int> counters_;

  int sum() const {
    int total = 0;
    for (const auto& [key, value] : counters_) total += value;
    return total;
  }
};
