// TRC-1 fixtures: async span names must pair project-wide — every
// async_begin name needs an async_end somewhere in the tree and vice
// versa. "paired" is the clean negative; the two orphans are the
// positives; the tolerated orphan shows a suppression with its reason.
namespace fx {

struct Tracer {
  void async_begin(int track, const char* name, int id);
  void async_end(int track, const char* name, int id);
};

void run(Tracer& t) {
  t.async_begin(0, "paired", 1);
  t.async_end(0, "paired", 1);
  t.async_begin(0, "orphan_begin", 2);
  t.async_end(0, "orphan_end", 3);
  t.async_begin(0, "tolerated_orphan", 4);  // osap-lint: allow(TRC-1) closed by the viewer on teardown, not by us
}

}  // namespace fx
