// DET-1 fixture: hash-order traversal inside the fault layer
// (fixtures/fault/). Fault scheduling and crash bookkeeping feed the
// event stream directly, so traversal must walk det::sorted_keys.
#include <unordered_map>

struct FaultDet1Bad {
  std::unordered_map<int, bool> crashed_nodes_;

  int count() const {
    int n = 0;
    for (const auto& [node, dead] : crashed_nodes_) n += dead ? 1 : 0;
    return n;
  }
};
