// Implementation half of the leaky-auditor pair: one add, zero removes.
#include "aud1_bad.hpp"

LeakyAuditor::LeakyAuditor(Simulation& sim) : sim_(sim) { sim_.audits().add(this); }

LeakyAuditor::~LeakyAuditor() {}
