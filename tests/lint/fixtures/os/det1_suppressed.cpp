// DET-1 suppressions: both placements (line above, trailing), each with
// the mandatory reason.
#include <unordered_map>

struct Det1Suppressed {
  std::unordered_map<int, int> cache_;

  int total() const {
    int sum = 0;
    // osap-lint: allow(DET-1) summation is order-insensitive
    for (const auto& [key, value] : cache_) sum += value;
    int n = 0;
    for (const auto& [key, value] : cache_) ++n;  // osap-lint: allow(DET-1) counting is order-insensitive
    return sum + n;
  }
};
