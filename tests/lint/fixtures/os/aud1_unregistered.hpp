// AUD-1 fixture: an auditor that never registers at all.
#pragma once

class ForgottenAuditor : public InvariantAuditor {
 public:
  ForgottenAuditor() = default;
};
