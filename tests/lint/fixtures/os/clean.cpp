// Negative fixture: unordered state traversed the sanctioned way must
// produce zero findings even inside a watched layer.
#include <map>
#include <unordered_map>

#include "common/det.hpp"

struct CleanState {
  std::unordered_map<int, int> reg_;
  std::map<int, int> ordered_;

  int checksum() const {
    int sum = 0;
    for (int key : det::sorted_keys(reg_)) sum += reg_.at(key);
    for (const auto& [key, value] : ordered_) sum += value;
    return sum;
  }
};
