// LIF-1 fixture: the self-capturing continuation cycle from PR 1.
#include <functional>
#include <memory>

struct Lif1Bad {
  std::shared_ptr<std::function<void()>> cont_;

  void arm() {
    auto step = std::make_shared<std::function<void()>>();
    *step = [step] { (*step)(); };
  }
};
