// A suppression with nothing to suppress earns a note, not silence.
struct SupStale {
  int x = 0;  // osap-lint: allow(LIF-1) nothing here actually
};
