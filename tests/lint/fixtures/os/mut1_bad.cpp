// MUT-1 fixture: a "const" accessor that mutates through const_cast —
// the pattern the calendar queue's next_time() used to hide its cursor
// advance behind.
namespace osap {

class Calendar {
 public:
  unsigned peek() const {
    auto* self = const_cast<Calendar*>(this);
    ++self->scans_;
    return self->scans_;
  }
  unsigned scans() const {
    // osap-lint: allow(MUT-1) fixture exercising the suppression path
    return const_cast<Calendar*>(this)->scans_;
  }

 private:
  unsigned scans_ = 0;
};

}  // namespace osap
