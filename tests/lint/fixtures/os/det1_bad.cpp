// DET-1 fixture: hash-order traversal in a watched layer (fixtures/os/).
#include <unordered_map>
#include <unordered_set>

struct Det1Bad {
  std::unordered_map<int, int> table_;
  std::unordered_set<int> members_;

  int sum() const {
    int total = 0;
    for (const auto& [key, value] : table_) total += value;
    for (auto it = members_.begin(); it != members_.end(); ++it) total += *it;
    return total;
  }
};
