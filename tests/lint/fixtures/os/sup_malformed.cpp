// Malformed suppressions are themselves findings, not silent no-ops.
struct SupMalformed {
  int x = 0;  // osap-lint: allow(DET-1)
  int y = 0;  // osap-lint: allow(NOPE-9) not a rule
};
