// AUD-1 fixture: registers in the constructor but never deregisters.
#pragma once

class Simulation;

class LeakyAuditor : public InvariantAuditor {
 public:
  explicit LeakyAuditor(Simulation& sim);
  ~LeakyAuditor();

 private:
  Simulation& sim_;
};
