// DET-2 fixture: ambient randomness, wall clocks, and pointer keys.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>

struct Det2Bad {
  std::map<Det2Bad*, int> by_addr_;

  long sample() {
    std::mt19937 gen(12345);
    long x = rand();
    x += static_cast<long>(std::time(nullptr));
    auto now = std::chrono::system_clock::now();
    (void)now;
    (void)gen;
    return x;
  }
};
