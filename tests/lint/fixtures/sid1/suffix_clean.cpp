// Clean negative: a per-node name built from a registered suffix
// matches the registry by tail, whatever the node prefix is.
#include "names_fixture.hpp"

#include <string>

namespace fx {

struct Registry {
  long& counter(const char* name);
};

void per_node(Registry& r, const std::string& node) {
  r.counter((node + ".fx.paged_bytes").c_str());
  r.counter((node + fx::names::kPagedBytes).c_str());
}

}  // namespace fx
