// Miniature identifier registry for the SID-1 fixtures, in the same
// shape as src/trace/names.hpp: globals are full dotted names, entries
// starting with '.' are per-node suffixes matched by tail.
#pragma once

namespace fx::names {

inline constexpr const char* kAlpha = "fx.alpha";
inline constexpr const char* kBetaTotal = "fx.beta_total";
inline constexpr const char* kPagedBytes = ".fx.paged_bytes";
inline constexpr const char* kCellsDone = "osapd.cells_done";

}  // namespace fx::names
