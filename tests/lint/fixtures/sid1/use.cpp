// SID-1 fixtures: every dotted name fed to a counter sink must be
// declared in the registry the linter was pointed at
// (names_fixture.hpp). Inert unless the driver gets --names=.
#include "names_fixture.hpp"

namespace fx {

struct Registry {
  long& counter(const char* name);
  long& gauge(const char* name);
};

const char* node_name();

void exercise(Registry& r) {
  r.counter("fx.alpha");              // declared: exact registry value
  r.counter(fx::names::kBetaTotal);   // declared by construction
  r.counter("fx.alpja");              // near miss: one edit from fx.alpha
  r.counter("fx.totally_new");        // undeclared outright
  r.gauge("node7.fx.paged_byte");     // near miss against the suffix entry
  r.counter("fx.gamma");  // osap-lint: allow(SID-1) throwaway name; fixture asserts suppression plumbing
}

}  // namespace fx
