// SID-1 positive in the osapd harness style: sweep-level counters use
// full dotted names under the osapd. prefix. The registry constant is
// declared by construction; the literal one character short of it is
// the typo class SID-1 exists for. Inert unless the driver gets
// --names=.
#include "names_fixture.hpp"

namespace fx {

struct Registry {
  long& counter(const char* name);
};

void report_sweep(Registry& r) {
  r.counter(fx::names::kCellsDone);  // declared by construction
  r.counter("osapd.cells_don");      // near miss: one edit from osapd.cells_done
}

}  // namespace fx
