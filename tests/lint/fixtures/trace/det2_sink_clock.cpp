// DET-2 fixture: a wall clock leaking into a trace sink. Trace
// timestamps must come from the simulation clock — a host clock here
// would differ between runs and break the tracing-on/off digest law.
#include <chrono>

struct TraceSinkClockBad {
  long stamp() {
    auto wall = std::chrono::steady_clock::now();
    return wall.time_since_epoch().count();
  }
};
