// DET-1 fixture: hash-order traversal inside the trace layer
// (fixtures/trace/). Counter flushing feeds the observability JSON, so
// it must walk det::sorted_keys, never hash order.
#include <string>
#include <unordered_map>

struct TraceDet1Bad {
  std::unordered_map<std::string, long> flush_totals_;

  long flush() const {
    long total = 0;
    for (const auto& [name, value] : flush_totals_) total += value;
    return total;
  }
};
