// Clean negative: every kind enumerated, no default — adding a kind to
// ReportKind makes this switch fail to compile, which is the point.
#include "kinds.hpp"

namespace fx {

int clean(ReportKind k) {
  switch (k) {
    case ReportKind::Progress: return 1;
    case ReportKind::Suspended: return 2;
    case ReportKind::Succeeded: return 3;
  }
  return 0;
}

}  // namespace fx
