// A miniature watched kind enum for the EVT-1 fixtures. The name
// shadows the real ReportKind on purpose: the linter watches enums by
// name, and these fixtures are only ever scanned on their own.
#pragma once

namespace fx {

enum class ReportKind {
  Progress,
  Suspended,
  Succeeded,
};

}  // namespace fx
