// A tolerated default: the suppression names the rule and gives the
// reason, per the house style.
#include "kinds.hpp"

namespace fx {

int tolerated(ReportKind k) {
  switch (k) {
    case ReportKind::Progress: return 1;
    // osap-lint: allow(EVT-1) fixture glue; the real handler lives in the harness
    default: return 0;
  }
}

}  // namespace fx
