// EVT-1 positive: no default, but Succeeded is not handled either.
#include "kinds.hpp"

namespace fx {

int missing(ReportKind k) {
  switch (k) {
    case ReportKind::Progress: return 1;
    case ReportKind::Suspended: return 2;
  }
  return 0;
}

}  // namespace fx
