// EVT-1 positive: default: over a watched kind enum swallows any kind
// added later instead of failing the build.
#include "kinds.hpp"

namespace fx {

int weight(ReportKind k) {
  switch (k) {
    case ReportKind::Progress: return 1;
    case ReportKind::Suspended: return 2;
    default: return 0;
  }
}

}  // namespace fx
