// Mid layer: including the base layer is a legal downward edge.
#pragma once

#include "liba/base.hpp"

namespace fx {
inline int feature() { return base_value() + 1; }
}  // namespace fx
