// LAY-1 positive: libb and libc share the mid layer — sideways include.
#include "libc/other.hpp"

namespace fx {
int sibling() { return other(); }
}  // namespace fx
