// The other mid-layer sibling; leaf on purpose.
#pragma once

namespace fx {
inline int other() { return 3; }
}  // namespace fx
