// Clean negative: the top layer may include every layer below itself.
#include "liba/base.hpp"
#include "libb/feature.hpp"
#include "libc/other.hpp"

namespace fx {
int app() { return base_value() + feature() + other(); }
}  // namespace fx
