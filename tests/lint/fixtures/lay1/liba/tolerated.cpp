// A tolerated upward edge: suppression carries a reason, as required.
#include "libc/other.hpp"  // osap-lint: allow(LAY-1) legacy edge pending the libc split; tracked in the fixture brief

namespace fx {
int tolerated() { return other(); }
}  // namespace fx
