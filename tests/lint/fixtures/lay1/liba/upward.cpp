// LAY-1 positive: the base layer reaches UP into the mid layer.
#include "libb/feature.hpp"

namespace fx {
int upward() { return feature(); }
}  // namespace fx
