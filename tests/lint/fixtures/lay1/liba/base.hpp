// Bottom of the fixture DAG: no includes, everyone may reach down here.
#pragma once

namespace fx {
inline int base_value() { return 1; }
}  // namespace fx
