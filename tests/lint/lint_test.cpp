// osap-lint's own test bed: run the real binary over fixture sources with
// known violations and assert exact rule hits, suppression accounting,
// DET-1 layer scoping, the cross-TU rules (LAY-1, SID-1, TRC-1, EVT-1),
// the baseline round trip — and, as the meta-test, that the shipped
// src/ + tools/ + tests/ trees lint clean against the checked-in layer
// manifest, identifier registry, and (empty) baseline.
//
// Paths come in as compile definitions (OSAP_LINT_BIN, OSAP_LINT_FIXTURES,
// OSAP_LINT_SRC, OSAP_LINT_TOOLS, OSAP_LINT_TESTS, OSAP_LINT_LAYERS,
// OSAP_LINT_NAMES, OSAP_LINT_BASELINE) so the test works from any build
// directory.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_lint(const std::string& args) {
  LintRun result;
  const std::string cmd = std::string(OSAP_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

int count(const std::string& haystack, const std::string& needle) {
  int n = 0;
  std::size_t at = 0;
  while ((at = haystack.find(needle, at)) != std::string::npos) {
    ++n;
    at += needle.size();
  }
  return n;
}

#define EXPECT_HAS(out, needle) \
  EXPECT_NE((out).find(needle), std::string::npos) << "missing '" << (needle) << "' in:\n" << (out)

const std::string kFixtures = OSAP_LINT_FIXTURES;

TEST(LintCli, ListRulesNamesAllNine) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule : {"DET-1", "DET-2", "LIF-1", "AUD-1", "MUT-1",  //
                           "LAY-1", "SID-1", "TRC-1", "EVT-1"}) {
    EXPECT_HAS(run.output, rule);
  }
}

TEST(LintCli, NoArgsIsUsageError) {
  EXPECT_EQ(run_lint("").exit_code, 2);
}

TEST(LintCli, MissingPathIsIoError) {
  EXPECT_EQ(run_lint(kFixtures + "/no-such-dir").exit_code, 2);
}

TEST(LintCli, JsonFormatCarriesStatusPerFinding) {
  const LintRun run = run_lint("--format=json " + kFixtures + "/os/mut1_bad.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_HAS(run.output, "\"tool\": \"osap-lint\"");
  EXPECT_HAS(run.output, "\"new\": 1");
  EXPECT_HAS(run.output, "\"suppressed\": 1");
  EXPECT_HAS(run.output, "\"rule\": \"MUT-1\", \"status\": \"new\"");
  EXPECT_HAS(run.output, "\"rule\": \"MUT-1\", \"status\": \"suppressed\"");
}

TEST(LintCli, GithubAnnotationsPointAtTheFinding) {
  const LintRun run = run_lint("--github " + kFixtures + "/os/mut1_bad.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_HAS(run.output, "::error file=");
  EXPECT_HAS(run.output, "mut1_bad.cpp,line=9,title=osap-lint MUT-1::");
}

TEST(LintCli, DumpIndexShowsIncludeGraphAndIdentifierUses) {
  const LintRun run = run_lint("--layers=" + kFixtures + "/lay1/layers.txt --dump-index " +
                               kFixtures + "/lay1 " + kFixtures + "/trc1");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_HAS(run.output, "include graph:");
  EXPECT_HAS(run.output, "upward.cpp -> libb/feature.hpp [mid]");
  EXPECT_HAS(run.output, "identifier index:");
  EXPECT_HAS(run.output, "async_begin \"paired\"");
}

TEST(LintFixtures, FullSweepReportsEveryPlantedViolation) {
  const LintRun run = run_lint(kFixtures);
  EXPECT_EQ(run.exit_code, 1);
  const std::string& out = run.output;

  // DET-1: the two traversals in det1_bad.cpp plus the one in the trace
  // layer, at their exact lines.
  EXPECT_HAS(out, "det1_bad.cpp:11: DET-1: range-for over hash-ordered 'table_'");
  EXPECT_HAS(out, "det1_bad.cpp:12: DET-1: iterator traversal of hash-ordered 'members_'");
  EXPECT_HAS(out, "det1_trace.cpp:12: DET-1: range-for over hash-ordered 'flush_totals_'");
  EXPECT_HAS(out, "det1_fault.cpp:11: DET-1: range-for over hash-ordered 'crashed_nodes_'");
  EXPECT_EQ(count(out, " DET-1: "), 4) << out;

  // DET-2: pointer key, engine, rand, wall clocks.
  EXPECT_HAS(out, "det2_bad.cpp:9: DET-2: pointer-keyed 'map'");
  EXPECT_HAS(out, "det2_bad.cpp:12: DET-2: 'mt19937'");
  EXPECT_HAS(out, "det2_bad.cpp:13: DET-2: 'rand'");
  EXPECT_HAS(out, "det2_bad.cpp:14: DET-2: 'time()'");
  EXPECT_HAS(out, "det2_bad.cpp:15: DET-2: 'system_clock'");
  EXPECT_HAS(out, "det2_sink_clock.cpp:8: DET-2: 'steady_clock'");
  EXPECT_EQ(count(out, " DET-2: "), 6) << out;

  // LIF-1: the member declaration and the make_shared.
  EXPECT_HAS(out, "lif1_bad.cpp:6: LIF-1: shared_ptr<std::function>");
  EXPECT_HAS(out, "lif1_bad.cpp:9: LIF-1: make_shared<std::function>");
  EXPECT_EQ(count(out, " LIF-1: "), 2) << out;

  // AUD-1: unbalanced registration and a never-registered auditor, both
  // anchored at the class declaration in the header.
  EXPECT_HAS(out, "aud1_bad.hpp:6: AUD-1: auditor 'LeakyAuditor' has 1 audits().add(this) "
                  "but 0 audits().remove(this)");
  EXPECT_HAS(out,
             "aud1_unregistered.hpp:4: AUD-1: auditor 'ForgottenAuditor' never calls "
             "audits().add(this)");
  EXPECT_EQ(count(out, " AUD-1: "), 2) << out;

  // MUT-1: the const_cast in the "const" accessor; the suppressed twin
  // below it counts toward the suppression total only.
  EXPECT_HAS(out, "mut1_bad.cpp:9: MUT-1: 'const_cast'");
  EXPECT_EQ(count(out, " MUT-1: "), 1) << out;

  // TRC-1 needs no flags: span pairing is checked across every scanned
  // file. The paired span stays silent; each orphan is one finding.
  EXPECT_HAS(out, "spans.cpp:15: TRC-1: async span \"orphan_begin\" has async_begin but no "
                  "async_end");
  EXPECT_HAS(out, "spans.cpp:16: TRC-1: async span \"orphan_end\" has async_end but no "
                  "async_begin");
  EXPECT_EQ(count(out, " TRC-1: "), 2) << out;

  // EVT-1 needs no flags either: the fixture kinds.hpp defines the
  // watched enum, and the two bad switches each earn one finding.
  EXPECT_HAS(out, "switch_default.cpp:11: EVT-1: default: in a switch over ReportKind");
  EXPECT_HAS(out, "switch_missing.cpp:7: EVT-1: switch over ReportKind does not handle "
                  "1 kind(s): Succeeded");
  EXPECT_EQ(count(out, " EVT-1: "), 2) << out;

  // LAY-1 and SID-1 are inert without --layers= / --names=, so their
  // fixture suppressions surface as stale notes here — proof the rules
  // really were off, not silently matching.
  EXPECT_EQ(count(out, " LAY-1: "), 0) << out;
  EXPECT_EQ(count(out, " SID-1: "), 0) << out;
  EXPECT_HAS(out, "tolerated.cpp:2: note: allow(LAY-1) suppresses nothing");
  EXPECT_HAS(out, "use.cpp:21: note: allow(SID-1) suppresses nothing");

  // Malformed suppressions are findings; a stale one earns a note.
  EXPECT_HAS(out, "sup_malformed.cpp:3: SUP: allow(DET-1) without a reason");
  EXPECT_HAS(out, "sup_malformed.cpp:4: SUP: allow(NOPE-9) names an unknown rule");
  EXPECT_HAS(out, "sup_stale.cpp:3: note: allow(LIF-1) suppresses nothing");

  // Scoping and negatives: the unwatched copy of the DET-1 pattern and
  // the sanctioned-idiom file must not appear as violations.
  EXPECT_EQ(out.find("det1_unwatched.cpp"), std::string::npos) << out;
  EXPECT_EQ(out.find("clean.cpp"), std::string::npos) << out;

  EXPECT_HAS(out, "osap-lint: 21 violations, 5 suppressed");
}

TEST(LintFixtures, ValidSuppressionsSilenceBothPlacements) {
  const LintRun run = run_lint(kFixtures + "/os/det1_suppressed.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_HAS(run.output, "osap-lint: 0 violations, 2 suppressed");
}

TEST(LintFixtures, Det1IsScopedToWatchedLayers) {
  const LintRun run = run_lint(kFixtures + "/util/det1_unwatched.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_HAS(run.output, "osap-lint: 0 violations, 0 suppressed");
}

TEST(LintFixtures, Det1CoversTraceLayer) {
  // src/trace feeds scheduling-visible JSON output, so it is a watched
  // DET-1 layer like os/ and sched/.
  const LintRun run = run_lint(kFixtures + "/trace/det1_trace.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_HAS(run.output, "DET-1: range-for over hash-ordered 'flush_totals_'");
}

TEST(LintFixtures, Det1CoversFaultLayer) {
  // src/fault schedules failures straight into the event stream, so it is
  // a watched DET-1 layer like hadoop/ and net/.
  const LintRun run = run_lint(kFixtures + "/fault/det1_fault.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_HAS(run.output, "DET-1: range-for over hash-ordered 'crashed_nodes_'");
}

TEST(LintFixtures, Det2CatchesWallClockInTraceSink) {
  const LintRun run = run_lint(kFixtures + "/trace/det2_sink_clock.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_HAS(run.output, "DET-2: 'steady_clock'");
}

TEST(LintFixtures, SanctionedIdiomsPassInWatchedLayer) {
  const LintRun run = run_lint(kFixtures + "/os/clean.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_HAS(run.output, "osap-lint: 0 violations, 0 suppressed");
}

TEST(LintLay1, LayerDagForbidsUpwardAndSidewaysIncludes) {
  const LintRun run =
      run_lint("--layers=" + kFixtures + "/lay1/layers.txt " + kFixtures + "/lay1");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const std::string& out = run.output;
  EXPECT_HAS(out, "upward.cpp:2: LAY-1: include of \"libb/feature.hpp\" reaches upward into "
                  "'libb' (layer mid); 'liba' (layer base) may only include below itself");
  EXPECT_HAS(out, "sibling.cpp:2: LAY-1: include of \"libc/other.hpp\" reaches sideways into "
                  "sibling 'libc' (layer mid)");
  // Downward edges (libb -> liba, libd -> everything) are legal, and the
  // suppressed upward edge in tolerated.cpp counts as suppressed.
  EXPECT_EQ(out.find("feature.hpp:"), std::string::npos) << out;
  EXPECT_EQ(out.find("app.cpp:"), std::string::npos) << out;
  EXPECT_EQ(count(out, " LAY-1: "), 2) << out;
  EXPECT_HAS(out, "osap-lint: 2 violations, 1 suppressed");
}

TEST(LintSid1, RegistryCatchesTyposAndUndeclaredNames) {
  const LintRun run =
      run_lint("--names=" + kFixtures + "/sid1/names_fixture.hpp " + kFixtures + "/sid1");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const std::string& out = run.output;
  EXPECT_HAS(out, "use.cpp:18: SID-1: identifier \"fx.alpja\" is one edit away from "
                  "registered \"fx.alpha\"");
  EXPECT_HAS(out, "use.cpp:19: SID-1: identifier \"fx.totally_new\" is not declared in");
  // Suffix entries match by tail: the clean per-node name passes, the
  // one-edit-off tail is flagged against the suffix it nearly matches.
  EXPECT_HAS(out, "use.cpp:20: SID-1: identifier \"node7.fx.paged_byte\" is one edit away "
                  "from registered \".fx.paged_bytes\"");
  // The osapd-style fixture: the registry constant passes, the literal
  // one edit short of osapd.cells_done is flagged.
  EXPECT_HAS(out, "osapd_use.cpp:16: SID-1: identifier \"osapd.cells_don\" is one edit away "
                  "from registered \"osapd.cells_done\"");
  EXPECT_EQ(out.find("suffix_clean.cpp"), std::string::npos) << out;
  // Exact literals and registry constants are declared by construction.
  EXPECT_EQ(out.find("fx.alpha\" is not declared"), std::string::npos) << out;
  EXPECT_EQ(count(out, " SID-1: "), 4) << out;
  EXPECT_HAS(out, "osap-lint: 4 violations, 1 suppressed");
}

TEST(LintTrc1, AsyncSpansMustPairProjectWide) {
  const LintRun run = run_lint(kFixtures + "/trc1");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const std::string& out = run.output;
  EXPECT_HAS(out, "spans.cpp:15: TRC-1: async span \"orphan_begin\" has async_begin but no "
                  "async_end anywhere in the tree");
  EXPECT_HAS(out, "spans.cpp:16: TRC-1: async span \"orphan_end\" has async_end but no "
                  "async_begin anywhere in the tree");
  EXPECT_EQ(out.find("\"paired\""), std::string::npos) << out;
  EXPECT_EQ(count(out, " TRC-1: "), 2) << out;
  EXPECT_HAS(out, "osap-lint: 2 violations, 1 suppressed");
}

TEST(LintEvt1, KindSwitchesMustBeExhaustiveWithNoDefault) {
  const LintRun run = run_lint(kFixtures + "/evt1");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const std::string& out = run.output;
  EXPECT_HAS(out, "switch_default.cpp:11: EVT-1: default: in a switch over ReportKind");
  EXPECT_HAS(out, "switch_missing.cpp:7: EVT-1: switch over ReportKind does not handle "
                  "1 kind(s): Succeeded");
  EXPECT_EQ(out.find("switch_clean.cpp"), std::string::npos) << out;
  EXPECT_EQ(count(out, " EVT-1: "), 2) << out;
  EXPECT_HAS(out, "osap-lint: 2 violations, 1 suppressed");
}

// The baseline lifecycle: a finding exits 1; --update-baseline absorbs
// it; the baselined run exits 0; once the finding is fixed the leftover
// entry is flagged as stale.
TEST(LintBaseline, RoundTripAbsorbsFindingsAndFlagsStaleEntries) {
  const std::string tmp = "lint_baseline_roundtrip.json";
  std::remove(tmp.c_str());

  const LintRun plain = run_lint(kFixtures + "/os/mut1_bad.cpp");
  EXPECT_EQ(plain.exit_code, 1) << plain.output;

  const LintRun update =
      run_lint("--baseline=" + tmp + " --update-baseline " + kFixtures + "/os/mut1_bad.cpp");
  EXPECT_EQ(update.exit_code, 0) << update.output;
  EXPECT_HAS(update.output, "osap-lint: baseline updated (1 entry)");

  const LintRun absorbed = run_lint("--baseline=" + tmp + " " + kFixtures + "/os/mut1_bad.cpp");
  EXPECT_EQ(absorbed.exit_code, 0) << absorbed.output;
  EXPECT_HAS(absorbed.output, "osap-lint: 0 new violations, 1 baselined, 1 suppressed");

  // Same baseline against a clean file: nothing matches the entry, so it
  // is stale — reported as a note, not a failure.
  const LintRun stale = run_lint("--baseline=" + tmp + " " + kFixtures + "/os/clean.cpp");
  EXPECT_EQ(stale.exit_code, 0) << stale.output;
  EXPECT_HAS(stale.output, "note: stale baseline entry (MUT-1:");
  EXPECT_HAS(stale.output, "osap-lint: 0 new violations, 0 baselined, 0 suppressed");

  std::remove(tmp.c_str());
}

TEST(LintBaseline, MalformedBaselineIsAnIoError) {
  const std::string tmp = "lint_baseline_malformed.json";
  FILE* f = std::fopen(tmp.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"version\": 1}", f);
  std::fclose(f);
  const LintRun run = run_lint("--baseline=" + tmp + " " + kFixtures + "/os/clean.cpp");
  EXPECT_EQ(run.exit_code, 2) << run.output;
  std::remove(tmp.c_str());
}

// The meta-test: the tree the linter was built to guard must lint clean.
// A regression here means someone reintroduced hash-order traversal,
// ambient randomness, a continuation cycle, or a half-registered auditor.
TEST(LintMeta, ShippedSourceTreeIsClean) {
  const LintRun run = run_lint(OSAP_LINT_SRC);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_HAS(run.output, "osap-lint: 0 violations, 0 suppressed");
}

// The full CI configuration: all three roots, the checked-in layer
// manifest and identifier registry, and the (empty) committed baseline.
// This is exactly what the osap_lint_tree ctest case and the CI lint job
// run; it failing means a new finding must be fixed, suppressed with a
// reason, or deliberately baselined.
TEST(LintMeta, ShippedTreeIsCleanUnderFullConfiguration) {
  const LintRun run = run_lint(std::string("--layers=") + OSAP_LINT_LAYERS +
                               " --names=" + OSAP_LINT_NAMES +
                               " --baseline=" + OSAP_LINT_BASELINE + " " + OSAP_LINT_SRC + " " +
                               OSAP_LINT_TOOLS + " " + OSAP_LINT_TESTS);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_HAS(run.output, "osap-lint: 0 new violations, 0 baselined,");
  EXPECT_EQ(run.output.find("note: stale baseline entry"), std::string::npos) << run.output;
}

}  // namespace
