// osap-lint's own test bed: run the real binary over fixture sources with
// known violations and assert exact rule hits, suppression accounting,
// DET-1 layer scoping — and, as the meta-test, that the shipped src/ tree
// lints clean.
//
// Paths come in as compile definitions (OSAP_LINT_BIN, OSAP_LINT_FIXTURES,
// OSAP_LINT_SRC) so the test works from any build directory.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_lint(const std::string& args) {
  LintRun result;
  const std::string cmd = std::string(OSAP_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

int count(const std::string& haystack, const std::string& needle) {
  int n = 0;
  std::size_t at = 0;
  while ((at = haystack.find(needle, at)) != std::string::npos) {
    ++n;
    at += needle.size();
  }
  return n;
}

#define EXPECT_HAS(out, needle) \
  EXPECT_NE((out).find(needle), std::string::npos) << "missing '" << (needle) << "' in:\n" << (out)

const std::string kFixtures = OSAP_LINT_FIXTURES;

TEST(LintCli, ListRulesNamesAllFour) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule : {"DET-1", "DET-2", "LIF-1", "AUD-1", "MUT-1"}) {
    EXPECT_HAS(run.output, rule);
  }
}

TEST(LintCli, NoArgsIsUsageError) {
  EXPECT_EQ(run_lint("").exit_code, 2);
}

TEST(LintCli, MissingPathIsIoError) {
  EXPECT_EQ(run_lint(kFixtures + "/no-such-dir").exit_code, 2);
}

TEST(LintFixtures, FullSweepReportsEveryPlantedViolation) {
  const LintRun run = run_lint(kFixtures);
  EXPECT_EQ(run.exit_code, 1);
  const std::string& out = run.output;

  // DET-1: the two traversals in det1_bad.cpp plus the one in the trace
  // layer, at their exact lines.
  EXPECT_HAS(out, "det1_bad.cpp:11: DET-1: range-for over hash-ordered 'table_'");
  EXPECT_HAS(out, "det1_bad.cpp:12: DET-1: iterator traversal of hash-ordered 'members_'");
  EXPECT_HAS(out, "det1_trace.cpp:12: DET-1: range-for over hash-ordered 'flush_totals_'");
  EXPECT_HAS(out, "det1_fault.cpp:11: DET-1: range-for over hash-ordered 'crashed_nodes_'");
  EXPECT_EQ(count(out, " DET-1: "), 4) << out;

  // DET-2: pointer key, engine, rand, wall clocks.
  EXPECT_HAS(out, "det2_bad.cpp:9: DET-2: pointer-keyed 'map'");
  EXPECT_HAS(out, "det2_bad.cpp:12: DET-2: 'mt19937'");
  EXPECT_HAS(out, "det2_bad.cpp:13: DET-2: 'rand'");
  EXPECT_HAS(out, "det2_bad.cpp:14: DET-2: 'time()'");
  EXPECT_HAS(out, "det2_bad.cpp:15: DET-2: 'system_clock'");
  EXPECT_HAS(out, "det2_sink_clock.cpp:8: DET-2: 'steady_clock'");
  EXPECT_EQ(count(out, " DET-2: "), 6) << out;

  // LIF-1: the member declaration and the make_shared.
  EXPECT_HAS(out, "lif1_bad.cpp:6: LIF-1: shared_ptr<std::function>");
  EXPECT_HAS(out, "lif1_bad.cpp:9: LIF-1: make_shared<std::function>");
  EXPECT_EQ(count(out, " LIF-1: "), 2) << out;

  // AUD-1: unbalanced registration and a never-registered auditor, both
  // anchored at the class declaration in the header.
  EXPECT_HAS(out, "aud1_bad.hpp:6: AUD-1: auditor 'LeakyAuditor' has 1 audits().add(this) "
                  "but 0 audits().remove(this)");
  EXPECT_HAS(out,
             "aud1_unregistered.hpp:4: AUD-1: auditor 'ForgottenAuditor' never calls "
             "audits().add(this)");
  EXPECT_EQ(count(out, " AUD-1: "), 2) << out;

  // MUT-1: the const_cast in the "const" accessor; the suppressed twin
  // below it counts toward the suppression total only.
  EXPECT_HAS(out, "mut1_bad.cpp:9: MUT-1: 'const_cast'");
  EXPECT_EQ(count(out, " MUT-1: "), 1) << out;

  // Malformed suppressions are findings; a stale one earns a note.
  EXPECT_HAS(out, "sup_malformed.cpp:3: SUP: allow(DET-1) without a reason");
  EXPECT_HAS(out, "sup_malformed.cpp:4: SUP: allow(NOPE-9) names an unknown rule");
  EXPECT_HAS(out, "sup_stale.cpp:3: note: allow(LIF-1) suppresses nothing");

  // Scoping and negatives: the unwatched copy of the DET-1 pattern and
  // the sanctioned-idiom file must not appear as violations.
  EXPECT_EQ(out.find("det1_unwatched.cpp"), std::string::npos) << out;
  EXPECT_EQ(out.find("clean.cpp"), std::string::npos) << out;

  EXPECT_HAS(out, "osap-lint: 17 violations, 3 suppressed");
}

TEST(LintFixtures, ValidSuppressionsSilenceBothPlacements) {
  const LintRun run = run_lint(kFixtures + "/os/det1_suppressed.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_HAS(run.output, "osap-lint: 0 violations, 2 suppressed");
}

TEST(LintFixtures, Det1IsScopedToWatchedLayers) {
  const LintRun run = run_lint(kFixtures + "/util/det1_unwatched.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_HAS(run.output, "osap-lint: 0 violations, 0 suppressed");
}

TEST(LintFixtures, Det1CoversTraceLayer) {
  // src/trace feeds scheduling-visible JSON output, so it is a watched
  // DET-1 layer like os/ and sched/.
  const LintRun run = run_lint(kFixtures + "/trace/det1_trace.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_HAS(run.output, "DET-1: range-for over hash-ordered 'flush_totals_'");
}

TEST(LintFixtures, Det1CoversFaultLayer) {
  // src/fault schedules failures straight into the event stream, so it is
  // a watched DET-1 layer like hadoop/ and net/.
  const LintRun run = run_lint(kFixtures + "/fault/det1_fault.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_HAS(run.output, "DET-1: range-for over hash-ordered 'crashed_nodes_'");
}

TEST(LintFixtures, Det2CatchesWallClockInTraceSink) {
  const LintRun run = run_lint(kFixtures + "/trace/det2_sink_clock.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_HAS(run.output, "DET-2: 'steady_clock'");
}

TEST(LintFixtures, SanctionedIdiomsPassInWatchedLayer) {
  const LintRun run = run_lint(kFixtures + "/os/clean.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_HAS(run.output, "osap-lint: 0 violations, 0 suppressed");
}

// The meta-test: the tree the linter was built to guard must lint clean.
// A regression here means someone reintroduced hash-order traversal,
// ambient randomness, a continuation cycle, or a half-registered auditor.
TEST(LintMeta, ShippedSourceTreeIsClean) {
  const LintRun run = run_lint(OSAP_LINT_SRC);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_HAS(run.output, "osap-lint: 0 violations, 0 suppressed");
}

}  // namespace
