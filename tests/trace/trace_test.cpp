// The observability subsystem (src/trace): tracer/counter/profiler units,
// the golden Chrome-trace-JSON file for a two-job preemption run, the
// paging-counter conservation law, dirty-flag audit sweep costs, and the
// out-of-band maps-done latency cut.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sched/dummy.hpp"
#include "trace/context.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

using trace::Tracer;

// --- tracer units ---------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;  // disabled by default
  const trace::TrackId trk = tracer.track("node0", "kernel");
  tracer.begin(trk, "phase");  // osap-lint: allow(SID-1) throwaway span name; asserts the disabled path
  tracer.end(trk);
  tracer.instant(trk, "spawn", {{"pid", 1}});
  tracer.async_begin(trk, "stopped", 7);
  tracer.async_end(trk, "stopped", 7);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, TrackRegistrationDeduplicatesWhileDisabled) {
  Tracer tracer;
  const trace::TrackId a = tracer.track("node0", "vmm");
  const trace::TrackId b = tracer.track("node0", "vmm");
  const trace::TrackId c = tracer.track("node0", "kernel");
  const trace::TrackId d = tracer.track("node1", "vmm");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(c, d);
}

TEST(Tracer, TimestampsQuantizeToIntegerMicroseconds) {
  Tracer tracer;
  tracer.set_enabled(true);
  SimTime now = 1.5;
  tracer.set_clock([&now] { return now; });
  const trace::TrackId trk = tracer.track("node0", "kernel");
  tracer.instant(trk, "tick");  // osap-lint: allow(SID-1) throwaway name; exercises clock scaling only
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos) << json;
  EXPECT_EQ(json.find("1.5"), std::string::npos) << "raw double leaked into " << json;
}

TEST(Tracer, InstantsCarryThreadScope) {
  Tracer tracer;
  tracer.set_enabled(true);
  const trace::TrackId trk = tracer.track("cluster", "preemptor");
  tracer.instant(trk, "preempt", {{"primitive", "susp"}});
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"primitive\":\"susp\""), std::string::npos) << json;
}

TEST(Tracer, MetadataNamesEveryProcessAndThread) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.track("node0", "kernel");
  tracer.track("node0", "vmm");
  tracer.track("cluster", "jobtracker");
  const std::string json = tracer.to_json();
  // Metadata precedes all real events and labels each lane.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"node0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"vmm\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"jobtracker\""), std::string::npos) << json;
}

TEST(Tracer, AsyncSpansMatchByNameAndId) {
  Tracer tracer;
  tracer.set_enabled(true);
  SimTime now = 1.0;
  tracer.set_clock([&now] { return now; });
  const trace::TrackId trk = tracer.track("node0", "kernel");
  tracer.async_begin(trk, "stopped", 42);
  now = 4.5;
  tracer.async_end(trk, "stopped", 42);
  EXPECT_DOUBLE_EQ(tracer.async_duration("stopped", 42), 3.5);
  EXPECT_LT(tracer.async_duration("stopped", 43), 0);  // unmatched
  EXPECT_LT(tracer.async_duration("suspend", 42), 0);
}

TEST(Tracer, EscapesJsonSpecialCharacters) {
  Tracer tracer;
  tracer.set_enabled(true);
  const trace::TrackId trk = tracer.track("node0", "kernel");
  tracer.instant(trk, "spawn", {{"name", std::string("a\"b\\c\nd")}});
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos) << json;
}

// --- counters & profiler --------------------------------------------------

TEST(Counters, FindOrCreateAndRead) {
  trace::CounterRegistry registry;
  registry.counter("node0.vmm.paged_out_bytes").add(4096);
  registry.counter("node0.vmm.paged_out_bytes").add(4096);
  registry.gauge("cluster.jobs_running").set(2);
  EXPECT_EQ(registry.value("node0.vmm.paged_out_bytes"), 8192u);
  // osap-lint: allow(SID-1) deliberately unregistered: asserts untouched counters read zero
  EXPECT_EQ(registry.value("never.touched"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("cluster.jobs_running").value(), 2);
}

TEST(Counters, JsonIsSortedByName) {
  trace::CounterRegistry registry;
  registry.counter("zeta").add(1);  // osap-lint: allow(SID-1) throwaway name; asserts JSON sort order
  registry.counter("alpha").add(2);  // osap-lint: allow(SID-1) throwaway name; asserts JSON sort order
  std::ostringstream os;
  registry.write_json(os);
  const std::string json = os.str();
  const auto alpha = json.find("\"alpha\":2");
  const auto zeta = json.find("\"zeta\":1");
  ASSERT_NE(alpha, std::string::npos) << json;
  ASSERT_NE(zeta, std::string::npos) << json;
  EXPECT_LT(alpha, zeta);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{}"), std::string::npos) << json;
}

TEST(Profiler, AccumulatesCallsAndWork) {
  trace::HotPathProfiler profiler;
  profiler.add(trace::HotPath::EventDispatch, 3);
  profiler.add(trace::HotPath::EventDispatch, 5);
  profiler.add(trace::HotPath::VmmReclaim);
  const auto dispatch = profiler.stats(trace::HotPath::EventDispatch);
  EXPECT_EQ(dispatch.calls, 2u);
  EXPECT_EQ(dispatch.work, 8u);
  EXPECT_EQ(profiler.stats(trace::HotPath::VmmReclaim).calls, 1u);
  std::ostringstream os;
  profiler.write_json(os);
  EXPECT_NE(os.str().find("\"EventDispatch\":{\"calls\":2,\"work\":8}"), std::string::npos)
      << os.str();
}

// --- integration ----------------------------------------------------------

TaskSpec reduce_task(Bytes shuffle, Bytes state = 0) {
  TaskSpec spec;
  spec.type = TaskType::Reduce;
  spec.shuffle_bytes = shuffle;
  spec.sort_cpu_seconds = 5.0;
  spec.input_bytes = 0;
  spec.output_bytes = shuffle / 2;
  spec.state_memory = state;
  spec.framework_memory = 160 * MiB;
  spec.parse_cpu_per_byte = 1.0 / (6.7 * static_cast<double>(MiB));
  return spec;
}

struct Rig {
  explicit Rig(ClusterConfig cfg) : cluster(cfg) {
    auto sched = std::make_unique<DummyScheduler>(cluster);
    ds = sched.get();
    cluster.set_scheduler(std::move(sched));
  }
  Cluster cluster;
  DummyScheduler* ds = nullptr;
};

/// The paper's two-job suspend scenario, small enough for a golden file:
/// tl runs, th arrives at 50% and displaces it via SIGTSTP, tl resumes
/// when th completes.
std::string run_two_job_preemption_trace() {
  ClusterConfig cfg = paper_cluster();
  cfg.trace.enabled = true;
  Rig rig(cfg);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, light_map_task(64 * MiB)));
  rig.ds->at_progress("tl", 0, 0.5, [&rig] {
    rig.cluster.submit(single_task_job("th", 10, light_map_task(32 * MiB)));
    rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend);
  });
  rig.ds->on_complete("th", [&rig] { rig.ds->restore("tl", 0, PreemptPrimitive::Suspend); });
  rig.cluster.run();
  EXPECT_TRUE(rig.cluster.job_tracker().all_jobs_done());
  return rig.cluster.sim().trace().tracer().to_json();
}

// The golden-file test: byte-exact Chrome trace JSON for the preemption
// run, stable across GCC and Clang (integer-µs timestamps, no doubles in
// args). Regenerate deliberately with OSAP_UPDATE_GOLDEN=1 after an
// instrumentation change, and eyeball the diff — it IS the trace schema.
TEST(TraceGolden, TwoJobPreemptionMatchesGoldenFile) {
  const std::string got = run_two_job_preemption_trace();
  const std::string path = std::string(OSAP_TRACE_GOLDEN_DIR) + "/two_job_preemption.json";
  if (std::getenv("OSAP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "golden file regenerated at " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with OSAP_UPDATE_GOLDEN=1 to create it";
  std::ostringstream want;
  want << in.rdbuf();
  // Compare lengths first for a readable failure, then bytes.
  ASSERT_EQ(got.size(), want.str().size())
      << "trace JSON size changed; regenerate the golden file if intended";
  EXPECT_EQ(got, want.str());
}

TEST(TraceIntegration, TraceContainsSuspendProtocolSpans) {
  ClusterConfig cfg = paper_cluster();
  cfg.trace.enabled = true;
  Rig rig(cfg);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, light_map_task(64 * MiB)));
  rig.ds->at_progress("tl", 0, 0.5, [&rig] {
    rig.cluster.submit(single_task_job("th", 10, light_map_task(32 * MiB)));
    rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend);
  });
  rig.ds->on_complete("th", [&rig] { rig.ds->restore("tl", 0, PreemptPrimitive::Suspend); });
  rig.cluster.run();
  const Tracer& tracer = rig.cluster.sim().trace().tracer();
  const std::string json = tracer.to_json();
  // MUST_SUSPEND -> SUSPENDED at the JobTracker, the SIGTSTP handler
  // window and stop at the kernel, and the preemptor's decisions.
  EXPECT_NE(json.find("\"name\":\"suspend\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"resume\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sigtstp_window\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stopped\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"preempt\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"restore\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"heartbeat\""), std::string::npos);
  // The suspend span resolved (no dangling b without e).
  const TaskId tl = rig.ds->task_of("tl", 0);
  EXPECT_GT(tracer.async_duration("suspend", tl.value()), 0.0);
  EXPECT_GT(tracer.async_duration("resume", tl.value()), 0.0);
}

TEST(TraceIntegration, PagingCountersObeyConservation) {
  // Same pressure scenario as Reduce.StatefulReducerSwapsUnderPressure:
  // a stateful reducer displaced by a hungry mapper must page. Once every
  // task process has exited (all regions released), the VMM books balance
  // exactly: paged_out == paged_in + discarded.
  ClusterConfig cfg = paper_cluster();
  cfg.trace.enabled = true;
  Rig rig(cfg);
  JobSpec red;
  red.name = "red";
  red.tasks.push_back(reduce_task(512 * MiB, /*state=*/2 * GiB));
  rig.ds->submit_at(0.05, red);
  rig.ds->at_progress("red", 0, 0.5, [&rig] {
    rig.cluster.submit(single_task_job("high", 10, hungry_map_task(2 * GiB)));
    rig.ds->preempt("red", 0, PreemptPrimitive::Suspend);
  });
  rig.ds->on_complete("high",
                      [&rig] { rig.ds->restore("red", 0, PreemptPrimitive::Suspend); });
  rig.cluster.run();
  const trace::CounterRegistry& counters = rig.cluster.sim().trace().counters();
  const std::uint64_t out = counters.value("node0.vmm.paged_out_bytes");
  const std::uint64_t in = counters.value("node0.vmm.paged_in_bytes");
  const std::uint64_t discarded = counters.value("node0.vmm.swap_discarded_bytes");
  EXPECT_GT(out, 0u) << "pressure scenario did not page at all";
  EXPECT_EQ(out, in + discarded);
  // Swap traffic actually hit the simulated spindle.
  EXPECT_GT(counters.value("node0.vmm.swap_out_io_bytes"), 0u);
}

TEST(TraceIntegration, HeartbeatCountersBalance) {
  ClusterConfig cfg = paper_cluster();
  Rig rig(cfg);
  rig.ds->submit_at(0.05, single_task_job("m", 0, light_map_task(64 * MiB)));
  rig.cluster.run();
  const trace::CounterRegistry& counters = rig.cluster.sim().trace().counters();
  const std::uint64_t sent = counters.value("node0.tasktracker.heartbeats_sent");
  EXPECT_GT(sent, 0u);
  // Every heartbeat the JobTracker saw was sent by the one tracker; sends
  // still in flight when the run stops keep the counts from matching
  // exactly, never the other way around.
  EXPECT_LE(counters.value("jobtracker.heartbeats_handled"), sent);
  EXPECT_GE(counters.value("jobtracker.heartbeats_handled"), sent - 1);
  // The launch action for the one task was sent and applied.
  EXPECT_GE(counters.value("scheduler.assignments"), 1u);
  EXPECT_GE(counters.value("node0.tasktracker.actions_applied"), 1u);
}

TEST(TraceIntegration, ObservabilityJsonCarriesAllSections) {
  ClusterConfig cfg = paper_cluster();
  cfg.trace.enabled = true;
  Rig rig(cfg);
  rig.ds->submit_at(0.05, single_task_job("m", 0, light_map_task(32 * MiB)));
  rig.cluster.run();
  std::ostringstream os;
  rig.cluster.sim().write_observability_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"events_processed\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_digest\":\"0x"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hot_paths\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"audit_sweeps\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"EventDispatch\""), std::string::npos) << json;
}

TEST(TraceIntegration, DirtyFlaggingSkipsCleanAuditSweeps) {
  // A reduce parked on the shuffle barrier leaves its node's kernel and
  // VMM untouched for long stretches; the dirty flag lets the periodic
  // sweep skip them there while still auditing every mutation window.
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  // The fluid model makes event streams sparse (this whole run is < 100
  // events), so sweep every event to observe the skip/sweep split.
  cfg.audit.stride = 1;
  Rig rig(cfg);
  JobSpec job;
  job.name = "mr";
  TaskSpec map = light_map_task(128 * MiB);
  map.preferred_node = rig.cluster.node(0);
  TaskSpec red = reduce_task(16 * MiB);
  red.preferred_node = rig.cluster.node(1);
  job.tasks.push_back(map);
  job.tasks.push_back(red);
  rig.ds->submit_at(0.05, job);
  rig.cluster.run();
  const AuditRegistry& audits = rig.cluster.sim().audits();
  EXPECT_GT(audits.sweeps(), 0u);
  bool saw_vmm = false;
  bool saw_kernel = false;
  for (const AuditRegistry::AuditorCost& cost : audits.costs()) {
    if (cost.label == "node1.vmm") {
      saw_vmm = true;
      EXPECT_GT(cost.swept, 0u) << "vmm was never audited";
      EXPECT_GT(cost.skipped, 0u) << "dirty-flagging never skipped an idle vmm sweep";
    }
    if (cost.label == "node1") {
      saw_kernel = true;
      EXPECT_GT(cost.swept, 0u) << "kernel was never audited";
      EXPECT_GT(cost.skipped, 0u) << "dirty-flagging never skipped an idle kernel sweep";
    }
  }
  EXPECT_TRUE(saw_vmm);
  EXPECT_TRUE(saw_kernel);
}

/// Shuffle-barrier latency for a reduce on a different node than the last
/// map, measured by the maps_done_delivery span.
double maps_done_latency(bool oob) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  cfg.hadoop.oob_maps_done = oob;
  cfg.trace.enabled = true;
  Rig rig(cfg);
  JobSpec job;
  job.name = "mr";
  TaskSpec map = light_map_task(128 * MiB);
  map.preferred_node = rig.cluster.node(0);
  TaskSpec red = reduce_task(16 * MiB);
  red.preferred_node = rig.cluster.node(1);
  job.tasks.push_back(map);
  job.tasks.push_back(red);
  rig.ds->submit_at(0.05, job);
  rig.cluster.run();
  EXPECT_TRUE(rig.cluster.job_tracker().all_jobs_done());
  const TaskId reduce_id = rig.ds->task_of("mr", 1);
  return rig.cluster.sim().trace().tracer().async_duration("maps_done_delivery",
                                                           reduce_id.value());
}

TEST(TraceIntegration, OobMapsDoneCutsShuffleBarrierLatency) {
  const double pushed = maps_done_latency(/*oob=*/true);
  const double piggybacked = maps_done_latency(/*oob=*/false);
  // Both spans resolved (begin at last map success, end at barrier
  // release on the reduce's node).
  ASSERT_GT(pushed, 0.0);
  ASSERT_GT(piggybacked, 0.0);
  // The push costs one network hop; piggybacking waits for the reduce
  // node's next periodic heartbeat round trip.
  EXPECT_LT(pushed, piggybacked);
  EXPECT_LT(pushed, 0.5);
}

}  // namespace
}  // namespace osap
