#include "sched/fair.hpp"

#include <gtest/gtest.h>

#include "workload/profiles.hpp"

namespace osap {
namespace {

TEST(Fair, StarvedJobTriggersPreemption) {
  // One slot; a long job hogs it; a second job arrives and must get its
  // share via suspension.
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  FairScheduler::Options options;
  options.cluster_map_slots = 1;
  options.preemption_timeout = seconds(10);
  options.primitive = PreemptPrimitive::Suspend;
  auto sched = std::make_unique<FairScheduler>(options);
  FairScheduler* fair = sched.get();
  cluster.set_scheduler(std::move(sched));

  JobId hog, late;
  cluster.sim().at(0.05,
                   [&] { hog = cluster.submit(single_task_job("hog", 0, light_map_task())); });
  cluster.sim().at(10.0,
                   [&] { late = cluster.submit(single_task_job("late", 0, light_map_task())); });
  cluster.run();
  EXPECT_GE(fair->preemptions_issued(), 1);
  const Job& h = cluster.job_tracker().job(hog);
  const Job& l = cluster.job_tracker().job(late);
  EXPECT_EQ(h.state, JobState::Succeeded);
  EXPECT_EQ(l.state, JobState::Succeeded);
  // The late job did not wait for the hog to finish end-to-end.
  EXPECT_LT(l.completed_at, h.completed_at + 80.0);
}

TEST(Fair, NoPreemptionWhenSharesSatisfied) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 2;
  Cluster cluster(cfg);
  FairScheduler::Options options;
  options.cluster_map_slots = 2;
  options.preemption_timeout = seconds(10);
  auto sched = std::make_unique<FairScheduler>(options);
  FairScheduler* fair = sched.get();
  cluster.set_scheduler(std::move(sched));
  cluster.sim().at(0.05, [&] { cluster.submit(single_task_job("a", 0, light_map_task())); });
  cluster.sim().at(0.10, [&] { cluster.submit(single_task_job("b", 0, light_map_task())); });
  cluster.run();
  EXPECT_EQ(fair->preemptions_issued(), 0);
}

TEST(Fair, SuspendedVictimResumesAfterward) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  FairScheduler::Options options;
  options.cluster_map_slots = 1;
  options.preemption_timeout = seconds(10);
  auto sched = std::make_unique<FairScheduler>(options);
  cluster.set_scheduler(std::move(sched));
  JobId hog;
  cluster.sim().at(0.05,
                   [&] { hog = cluster.submit(single_task_job("hog", 0, light_map_task())); });
  cluster.sim().at(10.0, [&] { cluster.submit(single_task_job("late", 0, light_map_task())); });
  cluster.run();
  const Job& h = cluster.job_tracker().job(hog);
  EXPECT_EQ(h.state, JobState::Succeeded);
  const Task& victim = cluster.job_tracker().task(h.tasks[0]);
  // Work-preserving: the hog's task was suspended and resumed, not rerun.
  EXPECT_EQ(victim.attempts_started, 1);
}

}  // namespace
}  // namespace osap
