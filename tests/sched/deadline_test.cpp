#include "sched/deadline.hpp"

#include <gtest/gtest.h>

#include "workload/profiles.hpp"

namespace osap {
namespace {

JobSpec job_with_deadline(const std::string& name, SimTime deadline, Bytes input = 512 * MiB) {
  JobSpec spec = single_task_job(name, 0, light_map_task(input));
  spec.deadline = deadline;
  return spec;
}

TEST(Deadline, EdfOrdersByDeadline) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 1;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<DeadlineScheduler>());
  // Both pending before the first launch; the later submission has the
  // earlier deadline and must run first.
  JobId relaxed{}, urgent{};
  cluster.sim().at(0.05, [&] { relaxed = cluster.submit(job_with_deadline("relaxed", 500)); });
  cluster.sim().at(0.10, [&] { urgent = cluster.submit(job_with_deadline("urgent", 120)); });
  cluster.run();
  EXPECT_LT(cluster.job_tracker().job(urgent).completed_at,
            cluster.job_tracker().job(relaxed).completed_at);
}

TEST(Deadline, UrgentArrivalPreemptsRunningJob) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 1;
  Cluster cluster(cfg);
  DeadlineScheduler::Options options;
  options.laxity_margin = seconds(20);
  auto sched = std::make_unique<DeadlineScheduler>(options);
  DeadlineScheduler* dl = sched.get();
  cluster.set_scheduler(std::move(sched));

  JobId background{}, urgent{};
  cluster.sim().at(0.05,
                   [&] { background = cluster.submit(job_with_deadline("bg", 1000)); });
  // Arrives at t=20 with an ~80 s task and a t=115 deadline: laxity ~15 s,
  // below the margin -> the background task must be suspended.
  cluster.sim().at(20.0, [&] { urgent = cluster.submit(job_with_deadline("urgent", 115)); });
  cluster.run();
  EXPECT_GE(dl->preemptions_issued(), 1);
  const Job& u = cluster.job_tracker().job(urgent);
  EXPECT_EQ(u.state, JobState::Succeeded);
  EXPECT_LE(u.completed_at, 115.0);  // deadline met
  // The background job was suspended, not killed.
  EXPECT_EQ(cluster.job_tracker().task(cluster.job_tracker().job(background).tasks[0])
                .attempts_started,
            1);
}

TEST(Deadline, NoPreemptionWhenLaxityIsComfortable) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 1;
  Cluster cluster(cfg);
  auto sched = std::make_unique<DeadlineScheduler>();
  DeadlineScheduler* dl = sched.get();
  cluster.set_scheduler(std::move(sched));
  cluster.sim().at(0.05, [&] { cluster.submit(job_with_deadline("a", 1000)); });
  cluster.sim().at(10.0, [&] { cluster.submit(job_with_deadline("b", 900)); });
  cluster.run();
  EXPECT_EQ(dl->preemptions_issued(), 0);
}

TEST(Deadline, LaxityAccountsForProgress) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  auto sched = std::make_unique<DeadlineScheduler>();
  DeadlineScheduler* dl = sched.get();
  cluster.set_scheduler(std::move(sched));
  JobId id{};
  cluster.sim().at(0.05, [&] { id = cluster.submit(job_with_deadline("j", 200)); });
  cluster.run_until(45.0);
  // Halfway through: remaining work ~40 s, laxity ~200-45-40.
  EXPECT_NEAR(dl->remaining_work(id), 40.0, 10.0);
  EXPECT_NEAR(dl->laxity(id), 115.0, 12.0);
}

TEST(Deadline, JobsWithoutDeadlinesRunLast) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 1;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<DeadlineScheduler>());
  JobId nodeadline{}, dated{};
  cluster.sim().at(0.05, [&] {
    nodeadline = cluster.submit(single_task_job("free", 0, light_map_task()));
  });
  cluster.sim().at(0.10, [&] { dated = cluster.submit(job_with_deadline("dated", 300)); });
  cluster.run();
  EXPECT_LT(cluster.job_tracker().job(dated).completed_at,
            cluster.job_tracker().job(nodeadline).completed_at);
}

}  // namespace
}  // namespace osap
