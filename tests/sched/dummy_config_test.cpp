#include "workload/dummy_config.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

struct Rig {
  Rig() : cluster(paper_cluster()) {
    auto sched = std::make_unique<DummyScheduler>(cluster);
    ds = sched.get();
    cluster.set_scheduler(std::move(sched));
  }
  Cluster cluster;
  DummyScheduler* ds = nullptr;
};

constexpr const char* kPaperConfig = R"(
# the two-job experiment of section IV
job tl priority 0 tasks 1 input 512MiB state 0
job th priority 10 tasks 1 input 512MiB state 0
submit tl at 0.05
at-progress tl 0 50% submit th
at-progress tl 0 50% preempt tl 0 susp
on-complete th restore tl 0 susp
)";

TEST(DummyConfig, RunsThePaperExperiment) {
  Rig rig;
  std::istringstream in(kPaperConfig);
  load_dummy_config(in, *rig.ds, rig.cluster);
  rig.cluster.run();
  const JobTracker& jt = rig.cluster.job_tracker();
  const Job& tl = jt.job(rig.ds->job_of("tl"));
  const Job& th = jt.job(rig.ds->job_of("th"));
  EXPECT_EQ(tl.state, JobState::Succeeded);
  EXPECT_EQ(th.state, JobState::Succeeded);
  // th preempted tl: short sojourn; tl resumed afterwards: one attempt.
  EXPECT_LT(th.sojourn(), 90.0);
  EXPECT_EQ(jt.task(tl.tasks[0]).attempts_started, 1);
}

TEST(DummyConfig, KillPrimitiveFromConfig) {
  Rig rig;
  std::istringstream in(R"(
job tl priority 0 tasks 1 input 512MiB state 0
job th priority 10 tasks 1 input 512MiB state 0
submit tl at 0.05
at-progress tl 0 40% submit th
at-progress tl 0 40% preempt tl 0 kill
)");
  load_dummy_config(in, *rig.ds, rig.cluster);
  rig.cluster.run();
  const JobTracker& jt = rig.cluster.job_tracker();
  EXPECT_EQ(jt.task(jt.job(rig.ds->job_of("tl")).tasks[0]).attempts_started, 2);
}

TEST(DummyConfig, StatefulJobsAndMultipleTasks) {
  Rig rig;
  std::istringstream in(R"(
job wide priority 0 tasks 3 input 64MiB state 1GiB
submit wide at 0.1
)");
  load_dummy_config(in, *rig.ds, rig.cluster);
  rig.cluster.run_until(1.0);
  const Job& job = rig.cluster.job_tracker().job(rig.ds->job_of("wide"));
  ASSERT_EQ(job.tasks.size(), 3u);
  EXPECT_EQ(job.spec.tasks[0].state_memory, 1 * GiB);
  EXPECT_EQ(job.spec.tasks[0].input_bytes, 64 * MiB);
}

TEST(DummyConfig, OnCompleteSubmitChainsJobs) {
  Rig rig;
  std::istringstream in(R"(
job first priority 0 tasks 1 input 64MiB state 0
job second priority 0 tasks 1 input 64MiB state 0
submit first at 0.05
on-complete first submit second
)");
  load_dummy_config(in, *rig.ds, rig.cluster);
  rig.cluster.run();
  const JobTracker& jt = rig.cluster.job_tracker();
  const Job& a = jt.job(rig.ds->job_of("first"));
  const Job& b = jt.job(rig.ds->job_of("second"));
  EXPECT_EQ(b.state, JobState::Succeeded);
  EXPECT_GE(b.submitted_at, a.completed_at);
}

TEST(DummyConfig, CommentsAndBlankLinesIgnored) {
  Rig rig;
  std::istringstream in("\n# nothing here\n   \n# job x is commented out\n");
  load_dummy_config(in, *rig.ds, rig.cluster);
  SUCCEED();
}

TEST(DummyConfig, UnknownDirectiveFailsWithLineNumber) {
  Rig rig;
  std::istringstream in("job a priority 0 tasks 1 input 1MiB state 0\nfrobnicate a\n");
  try {
    load_dummy_config(in, *rig.ds, rig.cluster);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(DummyConfig, UnknownJobReferenceFails) {
  Rig rig;
  std::istringstream in("submit ghost at 1.0\n");
  EXPECT_THROW(load_dummy_config(in, *rig.ds, rig.cluster), SimError);
}

TEST(DummyConfig, MalformedJobLineFails) {
  Rig rig;
  std::istringstream in("job a priority 0 tasks 1\n");
  EXPECT_THROW(load_dummy_config(in, *rig.ds, rig.cluster), SimError);
}

TEST(DummyConfig, BadPercentageFails) {
  Rig rig;
  std::istringstream in(
      "job a priority 0 tasks 1 input 1MiB state 0\n"
      "at-progress a 0 150% submit a\n");
  EXPECT_THROW(load_dummy_config(in, *rig.ds, rig.cluster), SimError);
}

TEST(ParseSize, Suffixes) {
  EXPECT_EQ(parse_size("0"), 0u);
  EXPECT_EQ(parse_size("123"), 123u);
  EXPECT_EQ(parse_size("123B"), 123u);
  EXPECT_EQ(parse_size("4KiB"), 4 * KiB);
  EXPECT_EQ(parse_size("512MiB"), 512 * MiB);
  EXPECT_EQ(parse_size("2GiB"), 2 * GiB);
  EXPECT_EQ(parse_size("2.5GiB"), gib(2.5));
  EXPECT_THROW(parse_size("12XB"), SimError);
  EXPECT_THROW(parse_size("oops"), SimError);
}

}  // namespace
}  // namespace osap
