#include "sched/capacity.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "hadoop/events.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

CapacityScheduler::Options two_queue_options(int slots = 2) {
  CapacityScheduler::Options options;
  options.cluster_map_slots = slots;
  options.queues = {{"prod", 0.5}, {"research", 0.5}};
  options.preemption_timeout = seconds(10);
  options.primitive = PreemptPrimitive::Suspend;
  return options;
}

TEST(Capacity, RejectsBadConfigs) {
  CapacityScheduler::Options empty;
  empty.queues.clear();
  EXPECT_THROW(CapacityScheduler{empty}, SimError);

  CapacityScheduler::Options over;
  over.queues = {{"a", 0.7}, {"b", 0.7}};
  EXPECT_THROW(CapacityScheduler{over}, SimError);
}

TEST(Capacity, UnknownQueueRejectedAtSubmit) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 2;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<CapacityScheduler>(two_queue_options()));
  JobSpec spec = single_task_job("x", 0, light_map_task());
  spec.queue = "nonexistent";
  EXPECT_THROW(cluster.submit(spec), SimError);
}

TEST(Capacity, ElasticBorrowWhenOtherQueueIdle) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 2;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<CapacityScheduler>(two_queue_options()));
  // Two research jobs, prod idle: research may borrow prod's slot and run
  // both tasks in parallel.
  JobId a{}, b{};
  cluster.sim().at(0.05, [&] {
    JobSpec spec = single_task_job("r1", 0, light_map_task());
    spec.queue = "research";
    a = cluster.submit(spec);
  });
  cluster.sim().at(0.10, [&] {
    JobSpec spec = single_task_job("r2", 0, light_map_task());
    spec.queue = "research";
    b = cluster.submit(spec);
  });
  cluster.run();
  // Parallel execution: both finish around one task duration.
  EXPECT_LT(cluster.job_tracker().job(a).sojourn(), 95.0);
  EXPECT_LT(cluster.job_tracker().job(b).sojourn(), 95.0);
}

TEST(Capacity, GuaranteeReclaimedByPreemption) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 2;
  Cluster cluster(cfg);
  auto sched = std::make_unique<CapacityScheduler>(two_queue_options());
  CapacityScheduler* cap = sched.get();
  cluster.set_scheduler(std::move(sched));

  // Research borrows both slots, then a prod job arrives: prod's
  // guarantee (1 slot) must come back via suspension.
  for (int i = 0; i < 2; ++i) {
    cluster.sim().at(0.05 + 0.05 * i, [&cluster, i] {
      // Named local sidesteps GCC 12's -Wrestrict false positive on
      // literal + to_string temporaries (PR105329).
      const std::string name = "r" + std::to_string(i);
      JobSpec spec = single_task_job(name, 0, light_map_task());
      spec.queue = "research";
      cluster.submit(spec);
    });
  }
  JobId prod{};
  cluster.sim().at(10.0, [&] {
    JobSpec spec = single_task_job("prod0", 0, light_map_task());
    spec.queue = "prod";
    prod = cluster.submit(spec);
  });
  cluster.run();
  EXPECT_GE(cap->preemptions_issued(), 1);
  const Job& p = cluster.job_tracker().job(prod);
  EXPECT_EQ(p.state, JobState::Succeeded);
  // Prod did not wait for a research task to finish on its own (~80 s
  // after its submission at t=10): it got a slot within the timeout plus
  // protocol latency.
  const Task& prod_task = cluster.job_tracker().task(p.tasks[0]);
  EXPECT_LT(prod_task.first_launched_at, 40.0);
}

struct ReclaimEvents {
  int kills = 0;
  int suspends = 0;
};

// Two queues with opposite per-queue `preempt=` modes; `donor` borrows
// both slots, then `claimant` arrives and reclaims its guarantee. The
// event trace shows which primitive actually hit the donor's task.
ReclaimEvents reclaim_guarantee(const std::string& donor, const std::string& claimant) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 2;
  Cluster cluster(cfg);
  CapacityScheduler::Options options;
  options.cluster_map_slots = 2;
  options.queues = {{"prod", 0.5, "susp"}, {"research", 0.5, "kill"}};
  options.preemption_timeout = seconds(10);
  auto sched = std::make_unique<CapacityScheduler>(options);
  CapacityScheduler* cap = sched.get();
  cluster.set_scheduler(std::move(sched));

  for (int i = 0; i < 2; ++i) {
    cluster.sim().at(0.05 + 0.05 * i, [&cluster, &donor, i] {
      const std::string name = donor + std::to_string(i);
      JobSpec spec = single_task_job(name, 0, light_map_task());
      spec.queue = donor;
      cluster.submit(spec);
    });
  }
  cluster.sim().at(10.0, [&] {
    JobSpec spec = single_task_job("claimant", 0, light_map_task(64 * MiB));
    spec.queue = claimant;
    cluster.submit(spec);
  });

  ReclaimEvents events;
  cluster.job_tracker().add_event_hook([&events](const ClusterEvent& ev) {
    if (ev.type == ClusterEventType::TaskKillRequested) ++events.kills;
    if (ev.type == ClusterEventType::TaskSuspendRequested) ++events.suspends;
  });
  cluster.run();
  EXPECT_GE(cap->preemptions_issued(), 1) << donor << " -> " << claimant;
  EXPECT_TRUE(cluster.job_tracker().all_jobs_done());
  return events;
}

TEST(Capacity, PerQueuePreemptModeSelectsThePrimitive) {
  // research carries preempt=kill: reclaiming from it kills, never suspends.
  const ReclaimEvents from_research = reclaim_guarantee("research", "prod");
  EXPECT_GE(from_research.kills, 1);
  EXPECT_EQ(from_research.suspends, 0);
  // prod carries preempt=susp: reclaiming from it suspends, never kills.
  const ReclaimEvents from_prod = reclaim_guarantee("prod", "research");
  EXPECT_GE(from_prod.suspends, 1);
  EXPECT_EQ(from_prod.kills, 0);
}

TEST(Capacity, GuaranteedSlotsFloorAtOne) {
  CapacityScheduler::Options options;
  options.cluster_map_slots = 4;
  options.queues = {{"small", 0.1}, {"big", 0.9}};
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 4;
  Cluster cluster(cfg);
  auto sched = std::make_unique<CapacityScheduler>(options);
  CapacityScheduler* cap = sched.get();
  cluster.set_scheduler(std::move(sched));
  EXPECT_EQ(cap->guaranteed_slots("small"), 1);
  EXPECT_EQ(cap->guaranteed_slots("big"), 3);
  EXPECT_EQ(cap->guaranteed_slots("missing"), 0);
}

}  // namespace
}  // namespace osap
