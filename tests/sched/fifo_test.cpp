#include "sched/fifo.hpp"

#include <gtest/gtest.h>

#include "metrics/timeline.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

TEST(Fifo, PriorityBeatsSubmissionOrder) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  TimelineRecorder recorder(cluster.job_tracker());
  // Both jobs pending before the first launch heartbeat; high priority
  // submitted second but must run first.
  JobId low, high;
  cluster.sim().at(0.05, [&] { low = cluster.submit(single_task_job("low", 0, light_map_task())); });
  cluster.sim().at(0.10,
                   [&] { high = cluster.submit(single_task_job("high", 5, light_map_task())); });
  cluster.run();
  const Job& l = cluster.job_tracker().job(low);
  const Job& h = cluster.job_tracker().job(high);
  EXPECT_LT(h.completed_at, l.completed_at);
}

TEST(Fifo, EqualPrioritySubmissionOrder) {
  Cluster cluster(paper_cluster());
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  JobId a, b;
  cluster.sim().at(0.05, [&] { a = cluster.submit(single_task_job("a", 0, light_map_task())); });
  cluster.sim().at(0.10, [&] { b = cluster.submit(single_task_job("b", 0, light_map_task())); });
  cluster.run();
  EXPECT_LT(cluster.job_tracker().job(a).completed_at,
            cluster.job_tracker().job(b).completed_at);
}

TEST(Fifo, FillsAllSlots) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 3;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  JobSpec spec;
  spec.name = "wide";
  for (int i = 0; i < 3; ++i) spec.tasks.push_back(light_map_task());
  JobId id;
  cluster.sim().at(0.05, [&] { id = cluster.submit(spec); });
  cluster.run();
  // All three tasks ran concurrently: the job takes ~one task duration.
  EXPECT_LT(cluster.job_tracker().job(id).sojourn(), 95.0);
}

TEST(Fifo, RemoteLaunchWaitsForLocalityDelay) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>(seconds(10)));
  TimelineRecorder recorder(cluster.job_tracker());
  // Pin the task to node 1, then keep node 1 busy so only node 0 offers
  // slots; the launch should wait out the delay and go remote.
  TaskSpec busy = light_map_task();
  busy.preferred_node = cluster.node(1);
  TaskSpec pinned = light_map_task();
  pinned.preferred_node = cluster.node(1);
  JobId busy_id, pinned_id;
  cluster.sim().at(0.05, [&] { busy_id = cluster.submit(single_task_job("busy", 0, busy)); });
  cluster.sim().at(3.50,
                   [&] { pinned_id = cluster.submit(single_task_job("pinned", 0, pinned)); });
  cluster.run();
  const TaskId pinned_task = cluster.job_tracker().job(pinned_id).tasks[0];
  const SimTime launched = *recorder.first(ClusterEventType::TaskLaunched, pinned_task);
  // Not before submit + locality delay.
  EXPECT_GE(launched, 13.0);
  // And it did go to the non-preferred node 0 rather than wait ~80 s.
  EXPECT_LT(launched, 30.0);
  for (const ClusterEvent& e : recorder.events()) {
    if (e.type == ClusterEventType::TaskLaunched && e.task == pinned_task) {
      EXPECT_EQ(e.node, cluster.node(0));
    }
  }
}

}  // namespace
}  // namespace osap
