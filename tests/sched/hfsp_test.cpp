#include "sched/hfsp.hpp"

#include <gtest/gtest.h>

#include "workload/profiles.hpp"

namespace osap {
namespace {

TEST(Hfsp, SmallJobPreemptsBigJob) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  HfspScheduler::Options options;
  options.primitive = PreemptPrimitive::Suspend;
  auto sched = std::make_unique<HfspScheduler>(options);
  HfspScheduler* hfsp = sched.get();
  cluster.set_scheduler(std::move(sched));

  // Big job first (512 MB task), tiny job (64 MB task) arrives mid-run.
  JobId big, tiny;
  cluster.sim().at(0.05,
                   [&] { big = cluster.submit(single_task_job("big", 0, light_map_task())); });
  cluster.sim().at(20.0, [&] {
    tiny = cluster.submit(single_task_job("tiny", 0, light_map_task(64 * MiB)));
  });
  cluster.run();
  EXPECT_GE(hfsp->preemptions_issued(), 1);
  const Job& b = cluster.job_tracker().job(big);
  const Job& t = cluster.job_tracker().job(tiny);
  EXPECT_EQ(b.state, JobState::Succeeded);
  EXPECT_EQ(t.state, JobState::Succeeded);
  // The tiny job finished long before the big one (SRPT behaviour).
  EXPECT_LT(t.completed_at, b.completed_at);
  EXPECT_LT(t.sojourn(), 30.0);
  // Work preserved: the big task was suspended, not killed.
  EXPECT_EQ(cluster.job_tracker().task(b.tasks[0]).attempts_started, 1);
}

TEST(Hfsp, RemainingSizeShrinksWithProgress) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  auto sched = std::make_unique<HfspScheduler>();
  HfspScheduler* hfsp = sched.get();
  cluster.set_scheduler(std::move(sched));
  JobId id;
  cluster.sim().at(0.05, [&] { id = cluster.submit(single_task_job("j", 0, light_map_task())); });
  cluster.run_until(45.0);
  const Bytes remaining = hfsp->remaining_size(id);
  EXPECT_LT(remaining, 400 * MiB);
  EXPECT_GT(remaining, 100 * MiB);
}

TEST(Hfsp, BigJobCompletesAfterSmallOnesDrain) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  auto sched = std::make_unique<HfspScheduler>();
  cluster.set_scheduler(std::move(sched));
  JobId big;
  std::vector<JobId> smalls(3);
  cluster.sim().at(0.05,
                   [&] { big = cluster.submit(single_task_job("big", 0, light_map_task())); });
  for (int i = 0; i < 3; ++i) {
    cluster.sim().at(15.0 + 5 * i, [&, i] {
      smalls[static_cast<std::size_t>(i)] =
          cluster.submit(single_task_job("small" + std::to_string(i), 0, light_map_task(32 * MiB)));
    });
  }
  cluster.run();
  const Job& b = cluster.job_tracker().job(big);
  EXPECT_EQ(b.state, JobState::Succeeded);
  for (JobId s : smalls) {
    EXPECT_EQ(cluster.job_tracker().job(s).state, JobState::Succeeded);
    EXPECT_LT(cluster.job_tracker().job(s).completed_at, b.completed_at);
  }
}

}  // namespace
}  // namespace osap
