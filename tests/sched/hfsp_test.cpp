#include "sched/hfsp.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hadoop/events.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

TEST(Hfsp, SmallJobPreemptsBigJob) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  HfspScheduler::Options options;
  options.primitive = PreemptPrimitive::Suspend;
  auto sched = std::make_unique<HfspScheduler>(options);
  HfspScheduler* hfsp = sched.get();
  cluster.set_scheduler(std::move(sched));

  // Big job first (512 MB task), tiny job (64 MB task) arrives mid-run.
  JobId big, tiny;
  cluster.sim().at(0.05,
                   [&] { big = cluster.submit(single_task_job("big", 0, light_map_task())); });
  cluster.sim().at(20.0, [&] {
    tiny = cluster.submit(single_task_job("tiny", 0, light_map_task(64 * MiB)));
  });
  cluster.run();
  EXPECT_GE(hfsp->preemptions_issued(), 1);
  const Job& b = cluster.job_tracker().job(big);
  const Job& t = cluster.job_tracker().job(tiny);
  EXPECT_EQ(b.state, JobState::Succeeded);
  EXPECT_EQ(t.state, JobState::Succeeded);
  // The tiny job finished long before the big one (SRPT behaviour).
  EXPECT_LT(t.completed_at, b.completed_at);
  EXPECT_LT(t.sojourn(), 30.0);
  // Work preserved: the big task was suspended, not killed.
  EXPECT_EQ(cluster.job_tracker().task(b.tasks[0]).attempts_started, 1);
}

// Regression: the per-heartbeat preemption budget must pace *effective*
// preemptions only. A suspend order aimed at a blacklisted tracker is
// refused by the Preemptor; with a budget of 1 (the default), charging
// that dead order would leave the head job starved until the victim's
// task drained on its own. The refused victim must instead be excluded
// and the next candidate tried within the same heartbeat.
TEST(Hfsp, RefusedOrderDoesNotConsumePreemptionBudget) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  Cluster cluster(cfg);
  HfspScheduler::Options options;
  options.primitive = PreemptPrimitive::Suspend;  // budget defaults to 1
  auto sched = std::make_unique<HfspScheduler>(options);
  HfspScheduler* hfsp = sched.get();
  cluster.set_scheduler(std::move(sched));
  JobTracker& jt = cluster.job_tracker();

  // One big job spanning both nodes. Task 0 is shorter, so under the
  // default MostProgress policy it is the first eviction pick.
  JobId big{}, tiny{};
  cluster.sim().at(0.05, [&] {
    JobSpec spec = single_task_job("big", 0, light_map_task(256 * MiB));
    spec.tasks[0].preferred_node = cluster.node(0);
    spec.tasks.push_back(light_map_task());
    spec.tasks[1].preferred_node = cluster.node(1);
    big = cluster.submit(spec);
  });
  // Mid-run, task 0's tracker goes on the blacklist (as after repeated
  // attempt failures) — suspend orders against it are now no-ops.
  cluster.sim().at(20.0, [&] {
    const TaskId first = jt.job(big).tasks[0];
    ASSERT_EQ(jt.task(first).state, TaskState::Running);
    jt.testing_blacklist_tracker(jt.task(first).tracker);
  });
  cluster.sim().at(20.5, [&] {
    tiny = cluster.submit(single_task_job("tiny", 0, light_map_task(64 * MiB)));
  });

  std::vector<TaskId> suspend_requests;
  jt.add_event_hook([&](const ClusterEvent& ev) {
    if (ev.type == ClusterEventType::TaskSuspendRequested) suspend_requests.push_back(ev.task);
  });
  cluster.run();

  // The budget went to the healthy victim in the same heartbeat: task 1
  // was suspended, the blacklisted task 0 never was.
  EXPECT_GE(hfsp->preemptions_issued(), 1);
  ASSERT_FALSE(suspend_requests.empty());
  for (TaskId tid : suspend_requests) EXPECT_EQ(tid, jt.job(big).tasks[1]);
  // And the head job actually profited: it did not wait out the ~40 s
  // the blacklisted task would have needed to drain.
  const Job& t = jt.job(tiny);
  EXPECT_EQ(t.state, JobState::Succeeded);
  EXPECT_LT(t.sojourn(), 30.0);
  EXPECT_EQ(jt.job(big).state, JobState::Succeeded);
}

TEST(Hfsp, RemainingSizeShrinksWithProgress) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  auto sched = std::make_unique<HfspScheduler>();
  HfspScheduler* hfsp = sched.get();
  cluster.set_scheduler(std::move(sched));
  JobId id;
  cluster.sim().at(0.05, [&] { id = cluster.submit(single_task_job("j", 0, light_map_task())); });
  cluster.run_until(45.0);
  const Bytes remaining = hfsp->remaining_size(id);
  EXPECT_LT(remaining, 400 * MiB);
  EXPECT_GT(remaining, 100 * MiB);
}

TEST(Hfsp, BigJobCompletesAfterSmallOnesDrain) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  auto sched = std::make_unique<HfspScheduler>();
  cluster.set_scheduler(std::move(sched));
  JobId big;
  std::vector<JobId> smalls(3);
  cluster.sim().at(0.05,
                   [&] { big = cluster.submit(single_task_job("big", 0, light_map_task())); });
  for (int i = 0; i < 3; ++i) {
    cluster.sim().at(15.0 + 5 * i, [&, i] {
      smalls[static_cast<std::size_t>(i)] =
          cluster.submit(single_task_job("small" + std::to_string(i), 0, light_map_task(32 * MiB)));
    });
  }
  cluster.run();
  const Job& b = cluster.job_tracker().job(big);
  EXPECT_EQ(b.state, JobState::Succeeded);
  for (JobId s : smalls) {
    EXPECT_EQ(cluster.job_tracker().job(s).state, JobState::Succeeded);
    EXPECT_LT(cluster.job_tracker().job(s).completed_at, b.completed_at);
  }
}

}  // namespace
}  // namespace osap
