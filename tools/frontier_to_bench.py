#!/usr/bin/env python3
"""Distill an osapd summary's frontier block into a bench-style dump.

`osapd run configs/revoke.matrix` emits a cost vs. mean-sojourn frontier
(one point per node_mix x revoke_react group, docs/REVOKE.md). This tool
flattens those points into the {"counters": {...}} shape that
tools/bench_check.py already gates, so the revocation headline numbers
ride the same regression rail as BENCH_fig2/BENCH_scale: the committed
baseline is BENCH_revoke.json at the repo root.

Counter values are integers in milli-units (cost 1.266 -> 1266) so every
gated leaf clears bench_check's relative-deviation floor of 10.

--check-dominance additionally enforces the frontier's reason to exist:
some transient-mix point running checkpoint-on-warning must beat the
all-on-demand baseline (node_mix=0, revoke_react=none) on cost while
staying within --sojourn-slack (default 5%) of its mean sojourn.

Usage:
    frontier_to_bench.py SUMMARY [--out BENCH_revoke.json]
                         [--check-dominance] [--sojourn-slack 0.05]

Exit status: 0 clean, 1 dominance violated, 2 bad input.
"""

import argparse
import json
import sys


def milli(x):
    return int(round(x * 1000.0))


def to_bench(summary):
    """Bench-style dump from a summary's frontier, {dotted-counter: int}."""
    counters = {}
    for p in summary.get("frontier", []):
        stem = f"frontier.{p['node_mix']}.{p['revoke_react']}"
        counters[f"{stem}.runs"] = p["runs"]
        counters[f"{stem}.cost_milli"] = milli(p["cost_mean"])
        counters[f"{stem}.sojourn_milli"] = milli(p["sojourn_mean"])
        counters[f"{stem}.makespan_milli"] = milli(p["makespan_mean"])
    return {
        "frontier_points": len(summary.get("frontier", [])),
        "cells_ok": summary.get("cells_ok", 0),
        "counters": counters,
    }


def check_dominance(summary, slack):
    """Return None if a transient checkpoint point dominates, else a reason."""
    points = summary.get("frontier", [])
    baseline = next((p for p in points
                     if float(p["node_mix"]) == 0.0
                     and p["revoke_react"] == "none"), None)
    if baseline is None:
        return "no all-on-demand baseline (node_mix=0, revoke_react=none) in frontier"
    bar = baseline["sojourn_mean"] * (1.0 + slack)
    candidates = [p for p in points
                  if float(p["node_mix"]) > 0.0 and p["revoke_react"] == "checkpoint"]
    if not candidates:
        return "no transient-mix checkpoint points in frontier"
    for p in candidates:
        if p["cost_mean"] < baseline["cost_mean"] and p["sojourn_mean"] <= bar:
            print(f"dominance holds: mix={p['node_mix']} checkpoint "
                  f"cost {p['cost_mean']:.4f} < baseline {baseline['cost_mean']:.4f}, "
                  f"sojourn {p['sojourn_mean']:.2f} <= {bar:.2f} "
                  f"(baseline {baseline['sojourn_mean']:.2f} + {slack:.0%})")
            return None
    lines = [f"  mix={p['node_mix']} cost {p['cost_mean']:.4f} "
             f"sojourn {p['sojourn_mean']:.2f}" for p in candidates]
    return ("no checkpoint point beats the baseline "
            f"(cost {baseline['cost_mean']:.4f}, sojourn bar {bar:.2f}):\n"
            + "\n".join(lines))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("summary")
    ap.add_argument("--out", help="write the bench-style dump here")
    ap.add_argument("--check-dominance", action="store_true",
                    help="fail unless a transient checkpoint point dominates "
                         "the all-on-demand baseline")
    ap.add_argument("--sojourn-slack", type=float, default=0.05,
                    help="sojourn penalty allowed for a dominating point "
                         "(default 0.05)")
    args = ap.parse_args()

    try:
        with open(args.summary) as f:
            summary = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot load summary {args.summary}: {e}")
        return 2
    if not summary.get("frontier"):
        print(f"summary {args.summary} has no frontier block "
              "(not a revocation matrix?)")
        return 2

    bench = to_bench(summary)
    if args.out:
        with open(args.out, "w") as f:
            json.dump(bench, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {len(bench['counters'])} frontier counters to {args.out}")

    if args.check_dominance:
        reason = check_dominance(summary, args.sojourn_slack)
        if reason is not None:
            print(f"dominance check FAILED: {reason}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
