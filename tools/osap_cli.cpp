// osap — command-line front end for the simulator.
//
//   osap two-job  [--primitive wait|kill|susp|natjam] [--r 0.5]
//                 [--tl-state 0MiB] [--th-state 0MiB] [--runs 20] [--seed 42]
//       The paper's two-job experiment; prints the §IV metrics.
//
//   osap sweep    [--tl-state ...] [--th-state ...] [--seed 42]
//                 [--matrix file.matrix] [--set key=v1,v2]... [--digests]
//       Full r x primitive sweep (Figures 2/3 in one table). A thin
//       client of the osapd matrix expansion (docs/OSAPD.md): the
//       default matrix is the paper's fig2 grid, `--matrix` loads a
//       checked-in spec instead, and `--digests` prints one
//       "<config-digest> <trace-digest> <descriptor>" line per cell —
//       the bit-for-bit comparison anchor for `osapd run`.
//
//   osap gantt    [--primitive susp] [--r 0.5] [--tl-state ...] [--th-state ...]
//       One run, rendered as a Figure-1-style schedule.
//
//   osap config <file> [--nodes 1] [--seed 1]
//       Run a dummy-scheduler configuration file (§III-B) and report
//       every job's outcome.
//
//   osap trace    [--scheduler fifo|fair|hfsp|capacity|deadline]
//                 [--primitive susp] [--jobs 12] [--nodes 4] [--seed 7]
//       A SWIM-like trace under the chosen scheduler.
//
// `gantt`, `config` and `trace` also accept `--digest`: print the
// simulation's event-trace FNV digest after the run. Two invocations with
// identical flags must print identical digests (see docs/LINT.md). They
// also accept `--trace=<file>` (write a Chrome trace-event JSON, loadable
// in Perfetto) and `--counters=<file>` (write the observability JSON:
// counters, hot-path profile, audit sweep costs); see docs/OBSERVABILITY.md.
// `--faults=<file>` injects a scripted failure schedule (node crashes,
// tracker hangs, heartbeat drops, message delays, checkpoint losses) into
// the run; see docs/FAULTS.md for the plan syntax.
// `gantt`, `config` and `trace` also accept `--speculation` (turn on
// speculative backup attempts; see docs/SPECULATION.md) with optional
// `--spec-slowness`, `--spec-cap` and `--spec-min-runtime` tuning knobs.
//
// Flags take either `--key value` or `--key=value` form. Unknown flags
// are an error, never silently ignored — a typoed flag quietly running
// the default experiment has burned enough sweep hours already.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "common/error.hpp"

#include "core/run.hpp"
#include "fault/injector.hpp"
#include "osapd/expand.hpp"
#include "osapd/matrix.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "metrics/timeline.hpp"
#include "sched/capacity.hpp"
#include "sched/deadline.hpp"
#include "sched/fair.hpp"
#include "sched/hfsp.hpp"
#include "workload/dummy_config.hpp"
#include "workload/swim.hpp"
#include "workload/trace_file.hpp"
#include "workload/two_job.hpp"

namespace osap {
namespace {

struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  static Args parse(int argc, char** argv, int from) {
    Args args;
    for (int i = from; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        const std::string key = token.substr(2);
        if (const auto eq = key.find('='); eq != std::string::npos) {
          args.flags[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          args.flags[key] = argv[++i];
        } else {
          args.flags[key] = "true";
        }
      } else {
        args.positional.push_back(token);
      }
    }
    return args;
  }

  /// Reject any flag outside `allowed` (satellite of docs/OSAPD.md's
  /// mis-keyed-axis rule): unknown flags are an error, not a shrug.
  void check_allowed(const char* subcommand, const std::vector<std::string>& allowed) const {
    for (const auto& [key, value] : flags) {
      (void)value;
      bool ok = false;
      for (const std::string& a : allowed) ok = ok || key == a;
      OSAP_CHECK_MSG(ok, "osap " << subcommand << ": unknown flag --" << key
                                 << " (run 'osap' for the flag reference)");
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
};

/// Wire `--trace=` / `--counters=` output destinations into the cluster
/// config. Cluster::run() writes the files when the paths are non-empty.
void apply_trace_flags(const Args& args, ClusterConfig& cfg) {
  cfg.trace.trace_file = args.get("trace", "");
  cfg.trace.counters_file = args.get("counters", "");
}

/// Wire `--speculation` (plus the optional `--spec-slowness`, `--spec-cap`
/// and `--spec-min-runtime` tuning knobs) into the Hadoop config.
/// Speculative execution is opt-in: see docs/SPECULATION.md.
void apply_speculation_flags(const Args& args, ClusterConfig& cfg) {
  if (args.flags.contains("speculation")) cfg.hadoop.speculative_execution = true;
  cfg.hadoop.speculative_slowness =
      args.num("spec-slowness", cfg.hadoop.speculative_slowness);
  cfg.hadoop.speculative_cap =
      static_cast<int>(args.num("spec-cap", cfg.hadoop.speculative_cap));
  cfg.hadoop.speculative_min_runtime =
      args.num("spec-min-runtime", cfg.hadoop.speculative_min_runtime);
}

/// Build the injector for `--faults=<file>`, or nullptr without the flag.
/// The returned injector must outlive Cluster::run().
std::unique_ptr<fault::FaultInjector> maybe_inject_faults(const Args& args, Cluster& cluster) {
  const std::string path = args.get("faults", "");
  if (path.empty()) return nullptr;
  std::ifstream in(path);
  OSAP_CHECK_MSG(in, "cannot open fault plan " << path);
  return std::make_unique<fault::FaultInjector>(cluster, fault::parse_fault_plan(in));
}

void maybe_print_digest(const Args& args, const Cluster& cluster) {
  if (!args.flags.contains("digest")) return;
  std::printf("trace-digest: %016llx\n",
              static_cast<unsigned long long>(cluster.trace_digest()));
}

TwoJobParams params_from(const Args& args) {
  TwoJobParams params;
  params.primitive = parse_primitive(args.get("primitive", "susp"));
  params.progress_at_launch = args.num("r", 0.5);
  params.tl_state = parse_size(args.get("tl-state", "0"));
  params.th_state = parse_size(args.get("th-state", "0"));
  params.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  return params;
}

int cmd_two_job(const Args& args) {
  const int runs = static_cast<int>(args.num("runs", 20));
  RunningStat sojourn, makespan, swap;
  Rng seeder(static_cast<std::uint64_t>(args.num("seed", 42)));
  for (int i = 0; i < runs; ++i) {
    TwoJobParams params = params_from(args);
    params.seed = seeder.next_u64();
    const TwoJobResult res = run_two_job(params);
    sojourn.add(res.sojourn_th);
    makespan.add(res.makespan);
    swap.add(to_mib(res.tl_swapped_out));
  }
  std::printf("primitive=%s r=%.2f runs=%d\n", args.get("primitive", "susp").c_str(),
              args.num("r", 0.5), runs);
  std::printf("sojourn(th): %.1f s  (min %.1f, max %.1f)\n", sojourn.mean(), sojourn.min(),
              sojourn.max());
  std::printf("makespan:    %.1f s  (min %.1f, max %.1f)\n", makespan.mean(), makespan.min(),
              makespan.max());
  std::printf("tl paged:    %.0f MiB\n", swap.mean());
  return 0;
}

/// The paper's fig2 grid as a matrix spec — the same default the
/// checked-in configs/fig2.matrix spells out (modulo the seed axis).
osapd::MatrixSpec default_sweep_matrix(const Args& args) {
  osapd::MatrixSpec spec;
  spec.axes["workload"] = {"two_job"};
  spec.axes["primitive"] = {"wait", "kill", "susp"};
  spec.axes["r"] = {"0.1", "0.2", "0.3", "0.4", "0.5", "0.6", "0.7", "0.8", "0.9"};
  spec.axes["seed"] = {args.get("seed", "42")};
  spec.axes["tl_state"] = {args.get("tl-state", "0")};
  spec.axes["th_state"] = {args.get("th-state", "0")};
  return spec;
}

int cmd_sweep(const Args& args) {
  // Thin client of the osapd matrix expansion: identical cell order and
  // identical config digests to `osapd expand`/`osapd run`, computed
  // in-process.
  osapd::MatrixSpec spec;
  if (args.flags.contains("matrix")) {
    const std::string path = args.get("matrix", "");
    std::ifstream in(path);
    OSAP_CHECK_MSG(in, "cannot open matrix file " << path);
    spec = osapd::parse_matrix(in, path);
  } else {
    spec = default_sweep_matrix(args);
  }
  if (args.flags.contains("set")) osapd::apply_set(spec, args.get("set", ""));
  const std::vector<core::RunDescriptor> cells = osapd::expand(spec);

  if (args.flags.contains("digests")) {
    for (const core::RunDescriptor& d : cells) {
      const core::ResultRecord rec = core::run_descriptor(d);
      std::printf("%s %016llx %s%s\n", d.digest_hex().c_str(),
                  static_cast<unsigned long long>(rec.trace_digest), d.canonical().c_str(),
                  rec.ok ? "" : " FAILED");
    }
    return 0;
  }

  // Group results into the paper's table: r down the rows, one sojourn
  // and one makespan column per primitive.
  std::map<double, std::map<std::string, std::pair<double, double>>> grid;
  std::vector<std::string> prims;
  for (const core::RunDescriptor& d : cells) {
    const core::ResultRecord rec = core::run_descriptor(d);
    OSAP_CHECK_MSG(rec.ok, "sweep cell failed (" << d.canonical() << "): " << rec.error);
    const std::string prim = d.get("primitive", "susp");
    grid[d.num("r", 0.5)][prim] = {rec.sojourn_th, rec.makespan};
    if (std::find(prims.begin(), prims.end(), prim) == prims.end()) prims.push_back(prim);
  }
  std::vector<std::string> headers{"r (%)"};
  for (const std::string& p : prims) headers.push_back(p + " sojourn");
  for (const std::string& p : prims) headers.push_back(p + " makespan");
  Table table(headers);
  for (const auto& [r, by_prim] : grid) {
    std::vector<std::string> row{std::to_string(static_cast<int>(r * 100 + 0.5))};
    std::vector<std::string> tail;
    for (const std::string& p : prims) {
      const auto it = by_prim.find(p);
      row.push_back(it != by_prim.end() ? Table::num(it->second.first) : "-");
      tail.push_back(it != by_prim.end() ? Table::num(it->second.second) : "-");
    }
    row.insert(row.end(), tail.begin(), tail.end());
    table.row(row);
  }
  table.print();
  return 0;
}

int cmd_gantt(const Args& args) {
  TwoJobParams params = params_from(args);
  ClusterConfig cfg = params.cluster;
  cfg.seed = params.seed;
  apply_trace_flags(args, cfg);
  apply_speculation_flags(args, cfg);
  Cluster cluster(cfg);
  TimelineRecorder recorder(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  TaskSpec tl = params.tl_state > 0 ? hungry_map_task(params.tl_state) : light_map_task();
  TaskSpec th = params.th_state > 0 ? hungry_map_task(params.th_state) : light_map_task();
  ds.submit_at(0.05, single_task_job("tl", 0, tl));
  const PreemptPrimitive primitive = params.primitive;
  ds.at_progress("tl", 0, params.progress_at_launch, [&cluster, &ds, th, primitive] {
    cluster.submit(single_task_job("th", 10, th));
    ds.preempt("tl", 0, primitive);
  });
  ds.on_complete("th", [&ds, primitive] { ds.restore("tl", 0, primitive); });
  const auto faults = maybe_inject_faults(args, cluster);
  cluster.run();
  std::printf("%s", recorder.render_gantt(args.num("cell", 3.0)).c_str());
  maybe_print_digest(args, cluster);
  return 0;
}

int cmd_config(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: osap config <file>\n");
    return 1;
  }
  std::ifstream in(args.positional[0]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.positional[0].c_str());
    return 1;
  }
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = static_cast<int>(args.num("nodes", cfg.num_nodes));
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", cfg.seed));
  apply_trace_flags(args, cfg);
  apply_speculation_flags(args, cfg);
  Cluster cluster(cfg);
  TimelineRecorder recorder(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  load_dummy_config(in, ds, cluster);
  const auto faults = maybe_inject_faults(args, cluster);
  cluster.run();
  const JobTracker& jt = cluster.job_tracker();
  Table table({"job", "state", "submitted (s)", "sojourn (s)"});
  for (JobId id : jt.jobs_in_order()) {
    const Job& job = jt.job(id);
    const char* state = job.state == JobState::Succeeded   ? "succeeded"
                        : job.state == JobState::Failed    ? "failed"
                                                           : "incomplete";
    table.row({job.spec.name, state,
               Table::num(job.submitted_at, 2), Table::num(job.sojourn())});
  }
  table.print();
  std::printf("\n%s", recorder.render_gantt(3.0).c_str());
  maybe_print_digest(args, cluster);
  return 0;
}

int cmd_trace(const Args& args) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = static_cast<int>(args.num("nodes", 4));
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 7));
  apply_trace_flags(args, cfg);
  apply_speculation_flags(args, cfg);
  Cluster cluster(cfg);
  const PreemptPrimitive primitive = parse_primitive(args.get("primitive", "susp"));
  const std::string which = args.get("scheduler", "hfsp");
  if (which == "hfsp") {
    HfspScheduler::Options options;
    options.primitive = primitive;
    cluster.set_scheduler(std::make_unique<HfspScheduler>(options));
  } else if (which == "fair") {
    FairScheduler::Options options;
    options.cluster_map_slots = cfg.num_nodes * cfg.hadoop.map_slots;
    options.primitive = primitive;
    cluster.set_scheduler(std::make_unique<FairScheduler>(options));
  } else if (which == "deadline") {
    DeadlineScheduler::Options options;
    options.primitive = primitive;
    cluster.set_scheduler(std::make_unique<DeadlineScheduler>(options));
  } else if (which == "capacity") {
    CapacityScheduler::Options options;
    options.cluster_map_slots = cfg.num_nodes * cfg.hadoop.map_slots;
    options.queues = {{"default", 1.0}};
    options.primitive = primitive;
    cluster.set_scheduler(std::make_unique<CapacityScheduler>(options));
  } else if (which == "fifo") {
    cluster.set_scheduler(std::make_unique<FifoScheduler>());
  } else {
    std::fprintf(stderr, "unknown scheduler '%s'\n", which.c_str());
    return 1;
  }

  std::vector<SwimJob> trace;
  if (args.flags.contains("file")) {
    std::ifstream in(args.get("file", ""));
    if (!in) {
      std::fprintf(stderr, "cannot open trace file %s\n", args.get("file", "").c_str());
      return 1;
    }
    trace = load_trace_file(in);
  } else {
    SwimConfig swim;
    swim.jobs = static_cast<int>(args.num("jobs", 12));
    Rng rng(cfg.seed);
    trace = generate_swim_trace(swim, rng);
  }
  auto ids = std::make_shared<std::vector<std::pair<std::string, JobId>>>();
  for (SwimJob& job : trace) {
    const std::string name = job.spec.name;
    cluster.sim().at(job.arrival, [&cluster, ids, name, spec = std::move(job.spec)]() mutable {
      ids->emplace_back(name, cluster.submit(std::move(spec)));
    });
  }
  const auto faults = maybe_inject_faults(args, cluster);
  cluster.run();
  const JobTracker& jt = cluster.job_tracker();
  Table table({"job", "tasks", "sojourn (s)"});
  RunningStat sojourn;
  for (const auto& [name, id] : *ids) {
    const Job& job = jt.job(id);
    sojourn.add(job.sojourn());
    table.row({name, std::to_string(job.tasks.size()), Table::num(job.sojourn())});
  }
  table.print();
  std::printf("\nscheduler=%s primitive=%s mean sojourn %.1f s\n", which.c_str(),
              to_string(primitive), sojourn.mean());
  maybe_print_digest(args, cluster);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: osap <two-job|sweep|gantt|config|trace> [flags]\n"
               "\n"
               "  two-job  --primitive wait|kill|susp|natjam  --r 0.5\n"
               "           --tl-state 0MiB  --th-state 0MiB  --runs 20  --seed 42\n"
               "  sweep    --tl-state SZ  --th-state SZ  --seed 42\n"
               "           --matrix file.matrix  --set key=v1,v2  --digests\n"
               "  gantt    --primitive P  --r 0.5  --tl-state SZ  --th-state SZ\n"
               "           --seed 42  --cell 3.0  + common flags\n"
               "  config   <file>  --nodes 1  --seed 1  + common flags\n"
               "  trace    --scheduler fifo|fair|hfsp|capacity|deadline  --primitive P\n"
               "           --jobs 12  --nodes 4  --seed 7  --file trace.txt  + common flags\n"
               "\n"
               "common flags (gantt, config, trace):\n"
               "  --digest             print the event-trace FNV digest after the run\n"
               "  --trace=FILE         write a Chrome trace-event JSON (docs/OBSERVABILITY.md)\n"
               "  --counters=FILE      write the observability JSON\n"
               "  --faults=FILE        inject a scripted failure plan (docs/FAULTS.md)\n"
               "  --speculation        enable speculative execution (docs/SPECULATION.md)\n"
               "  --spec-slowness X  --spec-cap N  --spec-min-runtime S\n"
               "\n"
               "flags take --key value or --key=value; unknown flags are an error\n");
  return 1;
}

/// The common observability/fault/speculation flags gantt, config and
/// trace all share.
std::vector<std::string> with_common(std::vector<std::string> allowed) {
  for (const char* f : {"digest", "trace", "counters", "faults", "speculation",
                        "spec-slowness", "spec-cap", "spec-min-runtime"}) {
    allowed.emplace_back(f);
  }
  return allowed;
}

}  // namespace
}  // namespace osap

int main(int argc, char** argv) {
  using namespace osap;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (cmd == "two-job") {
      args.check_allowed("two-job", {"primitive", "r", "tl-state", "th-state", "runs", "seed"});
      return cmd_two_job(args);
    }
    if (cmd == "sweep") {
      args.check_allowed("sweep", {"tl-state", "th-state", "seed", "matrix", "set", "digests"});
      return cmd_sweep(args);
    }
    if (cmd == "gantt") {
      args.check_allowed("gantt", with_common({"primitive", "r", "tl-state", "th-state",
                                               "seed", "cell"}));
      return cmd_gantt(args);
    }
    if (cmd == "config") {
      args.check_allowed("config", with_common({"nodes", "seed"}));
      return cmd_config(args);
    }
    if (cmd == "trace") {
      args.check_allowed("trace", with_common({"scheduler", "primitive", "jobs", "nodes",
                                               "seed", "file"}));
      return cmd_trace(args);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
