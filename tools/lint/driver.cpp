// osap-lint — the project's determinism, lifetime, and architecture
// static-analysis pass (docs/LINT.md).
//
// The simulator's claim to validity is that two runs of one scenario
// produce byte-identical event streams; the linter enforces the
// codified rules that protect that claim plus the cross-TU structure
// rules the libosap carve-out depends on. Passes and the shared file
// model live in the sibling sources:
//
//   model.cpp        tokenizer front-end, suppressions, rule table
//   rules_local.cpp  DET-1, DET-2, LIF-1, MUT-1, AUD-1
//   project.cpp      LAY-1, SID-1, TRC-1, EVT-1 (project-wide artifacts)
//   output.cpp       text/json/github back-ends + the findings baseline
//
// Usage: osap_lint [--list-rules] [-v] [--format=text|json] [--github]
//                  [--layers=FILE] [--names=FILE] [--baseline=FILE]
//                  [--update-baseline] [--dump-index] <file-or-dir>...
// Exit:  0 clean (suppressed/baselined findings allowed), 1 new
//        violations, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "output.hpp"
#include "passes.hpp"

namespace osaplint {
namespace {

namespace fs = std::filesystem;

/// Layer directories whose state feeds scheduling/eviction decisions;
/// DET-1 applies to files living under any of them.
constexpr const char* kWatchedDirs[] = {"os",   "sim",  "sched",   "hadoop",
                                        "yarn", "hdfs", "preempt", "net",
                                        "trace", "fault"};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool watched_for_det1(const fs::path& p) {
  for (const fs::path& part : p.parent_path()) {
    for (const char* dir : kWatchedDirs) {
      if (part == dir) return true;
    }
  }
  return false;
}

int list_rules() {
  std::printf("osap-lint rules (suppress with '// osap-lint: allow(RULE) reason'):\n");
  for (const RuleInfo& r : kRules) {
    std::printf("  %-6s %s\n", r.id, r.summary);
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: osap_lint [--list-rules] [-v] [--format=text|json] [--github]\n"
               "                 [--layers=FILE] [--names=FILE] [--baseline=FILE]\n"
               "                 [--update-baseline] [--dump-index] <file-or-dir>...\n");
  return 2;
}

bool load_file(const fs::path& path, SourceFile& f) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  f.path = path.string();
  std::ostringstream buf;
  buf << in.rdbuf();
  f.raw = buf.str();
  f.det1_watched = watched_for_det1(path);
  strip(f);
  return true;
}

void dump_index(const std::vector<SourceFile>& sources, const LayerManifest& layers,
                const IdentifierIndex& index) {
  std::printf("include graph:\n");
  for (const SourceFile& f : sources) {
    for (const Include& inc : f.includes) {
      if (layers.loaded()) {
        const std::string dir = layers.dir_of_path(inc.path);
        std::printf("  %s -> %s [%s]\n", f.path.c_str(), inc.path.c_str(),
                    dir.empty() ? "-" : layers.layer_name(layers.rank_of_dir(dir)).c_str());
      } else {
        std::printf("  %s -> %s\n", f.path.c_str(), inc.path.c_str());
      }
    }
  }
  std::printf("identifier index:\n");
  for (const NameUse& use : index.uses) {
    std::printf("  %s:%d %s \"%s\"%s\n", use.file->path.c_str(), use.line, use.call.c_str(),
                use.name.c_str(), use.from_literal ? "" : " (via registry constant)");
  }
}

int run(int argc, char** argv) {
  std::vector<fs::path> roots;
  bool verbose = false;
  bool github = false;
  bool update_baseline = false;
  bool want_dump = false;
  std::string format = "text";
  std::string layers_path;
  std::string names_path;
  std::string baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto flag_value = [&arg](const char* name) -> const char* {
      const std::size_t n = std::strlen(name);
      if (arg.compare(0, n, name) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (arg == "--list-rules") return list_rules();
    if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else if (arg == "--github") {
      github = true;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--dump-index") {
      want_dump = true;
    } else if (const char* v = flag_value("--format")) {
      format = v;
      if (format != "text" && format != "json") {
        std::fprintf(stderr, "osap-lint: unknown format '%s'\n", v);
        return 2;
      }
    } else if (const char* v2 = flag_value("--layers")) {
      layers_path = v2;
    } else if (const char* v3 = flag_value("--names")) {
      names_path = v3;
    } else if (const char* v4 = flag_value("--baseline")) {
      baseline_path = v4;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return usage();
  if (update_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "osap-lint: --update-baseline needs --baseline=FILE\n");
    return 2;
  }

  // Gather and load files (sorted for stable output). Directories named
  // "fixtures" hold deliberately-dirty lint-test inputs and are skipped
  // when reached by recursion; naming one as a root still scans it.
  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && it->path().filename() == "fixtures") {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable(it->path())) files.push_back(it->path());
      }
    } else if (fs::is_regular_file(root, ec) && lintable(root)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "osap-lint: cannot read %s\n", root.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  std::vector<Finding> findings;
  for (const fs::path& path : files) {
    SourceFile f;
    if (!load_file(path, f)) {
      std::fprintf(stderr, "osap-lint: cannot open %s\n", path.string().c_str());
      return 2;
    }
    parse_suppressions(f, findings);
    sources.push_back(std::move(f));
  }

  // Project artifacts.
  LayerManifest layers;
  if (!layers_path.empty()) {
    try {
      layers = LayerManifest::load(layers_path);
    } catch (const std::runtime_error& e) {
      std::fprintf(stderr, "osap-lint: %s\n", e.what());
      return 2;
    }
  }
  NameRegistry registry;
  if (!names_path.empty()) {
    SourceFile reg;
    if (!load_file(names_path, reg)) {
      std::fprintf(stderr, "osap-lint: cannot open registry %s\n", names_path.c_str());
      return 2;
    }
    registry = NameRegistry::load(reg);
    if (!registry.loaded()) {
      std::fprintf(stderr, "osap-lint: registry %s declares no identifiers\n",
                   names_path.c_str());
      return 2;
    }
  }

  UnorderedNames names;
  KindEnums kind_enums;
  IdentifierIndex index;
  for (const SourceFile& f : sources) {
    collect_unordered_names(f, names);
    collect_kind_enums(f, kind_enums);
    index.build(f, registry);
  }
  if (verbose) {
    std::printf("osap-lint: %zu files, %zu unordered members, %zu unordered accessors, "
                "%zu identifier uses, %zu kind enums\n",
                sources.size(), names.vars.size(), names.fns.size(), index.uses.size(),
                kind_enums.enumerators.size());
  }
  if (want_dump) {
    dump_index(sources, layers, index);
    return 0;
  }

  // Rule passes.
  std::map<std::string, AuditorPair> aud_pairs;
  for (const SourceFile& f : sources) {
    check_det1(f, names, findings);
    check_det2(f, findings);
    check_lif1(f, findings);
    check_mut1(f, findings);
    collect_aud1(f, aud_pairs);
    check_lay1(f, layers, findings);
    check_evt1(f, kind_enums, findings);
  }
  check_aud1(aud_pairs, findings);
  check_sid1(index, registry, findings);
  check_trc1(index, findings);

  // Apply suppressions (a finding's line, matched by rule).
  for (SourceFile& f : sources) {
    for (Suppression& sup : f.suppressions) {
      for (Finding& finding : findings) {
        if (finding.suppressed || finding.file != f.path) continue;
        if (finding.rule == sup.rule && finding.line == sup.applies_to) {
          finding.suppressed = true;
          sup.used = true;
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });

  if (update_baseline) {
    if (!save_baseline(baseline_path, findings)) {
      std::fprintf(stderr, "osap-lint: cannot write baseline %s\n", baseline_path.c_str());
      return 2;
    }
    int entries = 0;
    for (const Finding& f : findings) {
      if (!f.suppressed) ++entries;
    }
    std::printf("osap-lint: baseline updated (%d entr%s) -> %s\n", entries,
                entries == 1 ? "y" : "ies", baseline_path.c_str());
    return 0;
  }

  Report report;
  if (!baseline_path.empty()) {
    std::vector<BaselineEntry> entries;
    std::string err;
    if (!load_baseline(baseline_path, entries, err)) {
      std::fprintf(stderr, "osap-lint: %s\n", err.c_str());
      return 2;
    }
    apply_baseline(findings, entries);
    report.baseline_active = true;
    for (BaselineEntry& e : entries) {
      if (!e.consumed) report.stale_baseline.push_back(std::move(e));
    }
  }

  for (const SourceFile& f : sources) {
    for (const Suppression& sup : f.suppressions) {
      if (!sup.used) report.stale_suppressions.push_back({f.path, sup.line, sup.rule});
    }
  }
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++report.suppressed;
    } else if (f.baselined) {
      ++report.baselined;
    } else {
      ++report.new_count;
    }
  }
  report.findings = std::move(findings);

  if (format == "json") {
    print_json(report);
  } else {
    print_text(report, verbose);
  }
  if (github) print_github(report);
  return report.new_count == 0 ? 0 : 1;
}

}  // namespace
}  // namespace osaplint

int main(int argc, char** argv) { return osaplint::run(argc, argv); }
