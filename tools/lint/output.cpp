#include "output.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace osaplint {

namespace {

constexpr const char* kRepoRoots[] = {"src", "tools", "tests", "bench", "examples"};

bool repo_root_component(const std::string& part) {
  for (const char* root : kRepoRoots) {
    if (part == root) return true;
  }
  return false;
}

}  // namespace

std::string rel_key(const std::string& path) {
  std::size_t best = std::string::npos;
  std::size_t at = 0;
  while (at <= path.size()) {
    const std::size_t slash = path.find('/', at);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    if (repo_root_component(path.substr(at, end - at))) best = at;
    if (slash == std::string::npos) break;
    at = slash + 1;
  }
  return best == std::string::npos ? path : path.substr(best);
}

// --- minimal JSON reader --------------------------------------------------
//
// Reads exactly the subset save_baseline() writes, tolerantly enough to
// survive hand-edits: objects, arrays, strings with the common escapes,
// and integers. Anything structurally unexpected fails the load — a
// broken ratchet file should stop CI, not silently admit findings.

namespace {

struct JsonReader {
  const std::string& s;
  std::size_t i = 0;
  bool ok = true;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }

  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return i < s.size() ? s[i] : '\0';
  }

  std::string string() {
    std::string out;
    if (!consume('"')) {
      ok = false;
      return out;
    }
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\' && i < s.size()) {
        const char esc = s[i++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          default: c = esc; break;  // \" \\ \/ and anything exotic verbatim
        }
      }
      out += c;
    }
    if (i >= s.size()) {
      ok = false;
      return out;
    }
    ++i;  // closing quote
    return out;
  }

  long number() {
    skip_ws();
    std::size_t end = i;
    if (end < s.size() && (s[end] == '-' || s[end] == '+')) ++end;
    while (end < s.size() && std::isdigit(static_cast<unsigned char>(s[end]))) ++end;
    if (end == i) {
      ok = false;
      return 0;
    }
    const long v = std::stol(s.substr(i, end - i));
    i = end;
    return v;
  }

  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      string();
    } else if (c == '{') {
      ++i;
      if (!consume('}')) {
        do {
          string();
          if (!consume(':')) ok = false;
          skip_value();
        } while (ok && consume(','));
        if (!consume('}')) ok = false;
      }
    } else if (c == '[') {
      ++i;
      if (!consume(']')) {
        do {
          skip_value();
        } while (ok && consume(','));
        if (!consume(']')) ok = false;
      }
    } else {
      // number / true / false / null
      while (i < s.size() && (ident_char(s[i]) || s[i] == '-' || s[i] == '+' || s[i] == '.')) ++i;
    }
  }
};

BaselineEntry read_entry(JsonReader& r) {
  BaselineEntry e;
  if (!r.consume('{')) {
    r.ok = false;
    return e;
  }
  if (r.consume('}')) return e;
  do {
    const std::string key = r.string();
    if (!r.consume(':')) r.ok = false;
    if (key == "file") {
      e.file = r.string();
    } else if (key == "line") {
      e.line = static_cast<int>(r.number());
    } else if (key == "rule") {
      e.rule = r.string();
    } else if (key == "message") {
      e.message = r.string();
    } else {
      r.skip_value();
    }
  } while (r.ok && r.consume(','));
  if (!r.consume('}')) r.ok = false;
  return e;
}

}  // namespace

bool load_baseline(const std::string& path, std::vector<BaselineEntry>& entries,
                   std::string& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err = "cannot open baseline " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonReader r{text};
  if (!r.consume('{')) {
    err = path + ": expected a JSON object";
    return false;
  }
  bool saw_findings = false;
  if (!r.consume('}')) {
    do {
      const std::string key = r.string();
      if (!r.consume(':')) r.ok = false;
      if (key == "findings") {
        saw_findings = true;
        if (!r.consume('[')) {
          r.ok = false;
          break;
        }
        if (!r.consume(']')) {
          do {
            entries.push_back(read_entry(r));
          } while (r.ok && r.consume(','));
          if (!r.consume(']')) r.ok = false;
        }
      } else {
        r.skip_value();
      }
    } while (r.ok && r.consume(','));
    if (!r.consume('}')) r.ok = false;
  }
  if (!r.ok || !saw_findings) {
    err = path + ": malformed baseline (expected {\"version\":1,\"findings\":[...]})";
    entries.clear();
    return false;
  }
  return true;
}

void apply_baseline(std::vector<Finding>& findings, std::vector<BaselineEntry>& entries) {
  for (Finding& f : findings) {
    if (f.suppressed) continue;
    const std::string key = rel_key(f.file);
    for (BaselineEntry& e : entries) {
      if (e.consumed || e.rule != f.rule || e.message != f.message) continue;
      if (rel_key(e.file) != key) continue;
      e.consumed = true;
      f.baselined = true;
      break;
    }
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool save_baseline(const std::string& path, const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\n  \"version\": 1,\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"file\": \"" << json_escape(rel_key(f.file)) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  out << (first ? "]\n}\n" : "\n  ]\n}\n");
  return static_cast<bool>(out);
}

// --- back-ends ------------------------------------------------------------

void print_text(const Report& r, bool verbose) {
  for (const Finding& f : r.findings) {
    if (f.suppressed) {
      if (verbose) {
        std::printf("%s:%d: %s: suppressed: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                    f.message.c_str());
      }
      continue;
    }
    if (f.baselined) {
      if (verbose) {
        std::printf("%s:%d: %s: baselined: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                    f.message.c_str());
      }
      continue;
    }
    std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(), f.message.c_str());
  }
  for (const StaleSuppression& s : r.stale_suppressions) {
    std::printf("%s:%d: note: allow(%s) suppresses nothing (stale suppression?)\n",
                s.file.c_str(), s.line, s.rule.c_str());
  }
  for (const BaselineEntry& e : r.stale_baseline) {
    std::printf("%s: note: stale baseline entry (%s: %s) matches nothing — remove it\n",
                e.file.c_str(), e.rule.c_str(), e.message.c_str());
  }
  if (r.baseline_active) {
    std::printf("osap-lint: %d new violation%s, %d baselined, %d suppressed\n", r.new_count,
                r.new_count == 1 ? "" : "s", r.baselined, r.suppressed);
  } else {
    std::printf("osap-lint: %d violation%s, %d suppressed\n", r.new_count,
                r.new_count == 1 ? "" : "s", r.suppressed);
  }
}

void print_json(const Report& r) {
  std::printf("{\n  \"version\": 1,\n  \"tool\": \"osap-lint\",\n");
  std::printf("  \"new\": %d,\n  \"baselined\": %d,\n  \"suppressed\": %d,\n", r.new_count,
              r.baselined, r.suppressed);
  std::printf("  \"findings\": [");
  bool first = true;
  for (const Finding& f : r.findings) {
    const char* status = f.suppressed ? "suppressed" : f.baselined ? "baselined" : "new";
    std::printf("%s    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"status\": \"%s\", "
                "\"message\": \"%s\"}",
                first ? "\n" : ",\n", json_escape(f.file).c_str(), f.line,
                json_escape(f.rule).c_str(), status, json_escape(f.message).c_str());
    first = false;
  }
  std::printf("%s  ],\n", first ? "" : "\n");
  std::printf("  \"stale_baseline\": [");
  first = true;
  for (const BaselineEntry& e : r.stale_baseline) {
    std::printf("%s    {\"file\": \"%s\", \"rule\": \"%s\", \"message\": \"%s\"}",
                first ? "\n" : ",\n", json_escape(e.file).c_str(), json_escape(e.rule).c_str(),
                json_escape(e.message).c_str());
    first = false;
  }
  std::printf("%s  ],\n", first ? "" : "\n");
  std::printf("  \"stale_suppressions\": [");
  first = true;
  for (const StaleSuppression& s : r.stale_suppressions) {
    std::printf("%s    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\"}", first ? "\n" : ",\n",
                json_escape(s.file).c_str(), s.line, json_escape(s.rule).c_str());
    first = false;
  }
  std::printf("%s  ]\n}\n", first ? "" : "\n");
}

void print_github(const Report& r) {
  for (const Finding& f : r.findings) {
    if (f.suppressed || f.baselined) continue;
    // Workflow commands don't parse newlines or '::' inside the value;
    // findings contain neither, but escape '%' per the protocol.
    std::string msg;
    for (const char c : f.message) {
      if (c == '%') {
        msg += "%25";
      } else {
        msg += c;
      }
    }
    std::printf("::error file=%s,line=%d,title=osap-lint %s::%s\n", rel_key(f.file).c_str(),
                f.line, f.rule.c_str(), msg.c_str());
  }
}

}  // namespace osaplint
