// Single-file rule passes: DET-1, DET-2, LIF-1, MUT-1, and the AUD-1
// collection/check pair. Each works off the blanked code view of one
// SourceFile; only the artifacts they consume (the unordered-name set,
// the auditor pair map) span files.
#include <cstring>
#include <filesystem>

#include "passes.hpp"

namespace osaplint {

namespace fs = std::filesystem;

void collect_unordered_names(const SourceFile& f, UnorderedNames& names) {
  for (const char* kw : {"unordered_map", "unordered_set"}) {
    std::size_t i = 0;
    while ((i = find_word(f.code, kw, i)) != std::string::npos) {
      std::size_t p = skip_ws(f.code, i + std::strlen(kw));
      i += std::strlen(kw);
      if (p >= f.code.size() || f.code[p] != '<') continue;
      p = skip_angles(f.code, p);
      if (p == std::string::npos) continue;
      p = skip_ws(f.code, p);
      while (p < f.code.size() && (f.code[p] == '&' || f.code[p] == '*')) {
        p = skip_ws(f.code, p + 1);
      }
      const std::string name = ident_at(f.code, p);
      if (name.empty()) continue;
      p = skip_ws(f.code, p + name.size());
      if (p >= f.code.size()) continue;
      const char next = f.code[p];
      if (next == ';' || next == '=' || next == '{' || next == ',' || next == ')') {
        names.vars.insert(name);  // member / variable / parameter
      } else if (next == '(') {
        names.fns.insert(name);  // accessor returning the container
      }
    }
  }
}

void check_det1(const SourceFile& f, const UnorderedNames& names,
                std::vector<Finding>& findings) {
  if (!f.det1_watched) return;
  const std::string& code = f.code;

  // Range-for over hash-ordered state.
  std::size_t i = 0;
  while ((i = find_word(code, "for", i)) != std::string::npos) {
    std::size_t p = skip_ws(code, i + 3);
    i += 3;
    if (p >= code.size() || code[p] != '(') continue;
    const std::size_t close = skip_balanced(code, p, '(', ')');
    if (close == std::string::npos) continue;
    // Top-level ':' (not '::') splits a range-for header.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t j = p + 1; j + 1 < close; ++j) {
      const char c = code[j];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (c == ':' && depth == 0) {
        if (code[j + 1] == ':' || (j > 0 && code[j - 1] == ':')) continue;
        colon = j;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    std::size_t rb = colon + 1;
    std::size_t re = close - 1;
    while (rb < re && std::isspace(static_cast<unsigned char>(code[rb]))) ++rb;
    while (re > rb && std::isspace(static_cast<unsigned char>(code[re - 1]))) --re;
    if (re <= rb) continue;

    std::string culprit;
    if (code[re - 1] == ')') {
      // Call expression: attribute to the callee — `p.regions()` is a
      // hash-ordered accessor, `det::sorted_keys(m)` is the sanctioned
      // wrapper and passes.
      std::size_t open = re - 1;
      int d = 0;
      for (;; --open) {
        if (code[open] == ')') ++d;
        if (code[open] == '(' && --d == 0) break;
        if (open == rb) break;
      }
      const std::string callee = ident_before(code, open);
      if (names.fns.contains(callee)) culprit = callee + "()";
    } else {
      // Plain expression: attribute to the trailing identifier —
      // `regions_`, `p.regions_`, `obs_->phases` all end in the member.
      const std::string last = ident_before(code, re);
      if (names.vars.contains(last)) culprit = last;
    }
    if (!culprit.empty()) {
      findings.push_back({f.path, f.line_of(colon), "DET-1",
                          "range-for over hash-ordered '" + culprit +
                              "' — iterate det::sorted_keys() or an ordered container"});
    }
  }

  // Iterator traversal: name.begin() / cbegin() / rbegin().
  for (const char* fn : {"begin", "cbegin", "rbegin"}) {
    std::size_t j = 0;
    while ((j = find_word(code, fn, j)) != std::string::npos) {
      const std::size_t at = j;
      j += std::strlen(fn);
      const std::size_t after = skip_ws(code, j);
      if (after >= code.size() || code[after] != '(') continue;
      if (at == 0 || code[at - 1] != '.') continue;
      const std::string owner = ident_before(code, at - 1);
      if (names.vars.contains(owner)) {
        findings.push_back({f.path, f.line_of(at), "DET-1",
                            "iterator traversal of hash-ordered '" + owner +
                                "' — iterate det::sorted_keys() or an ordered container"});
      }
    }
  }
}

void check_det2(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& code = f.code;

  const auto flag = [&](std::size_t at, const std::string& what, const char* why) {
    findings.push_back({f.path, f.line_of(at), "DET-2", "'" + what + "' — " + why});
  };

  // Ambient randomness / wall clocks. All randomness flows through
  // osap::Rng; the only clock is the virtual one.
  constexpr const char* kBanned[] = {
      "rand",           "srand",          "random_device",        "random_shuffle",
      "mt19937",        "mt19937_64",     "minstd_rand",          "minstd_rand0",
      "default_random_engine",            "ranlux24",             "ranlux48",
      "knuth_b",        "system_clock",   "steady_clock",         "high_resolution_clock",
      "gettimeofday",   "clock_gettime",
  };
  for (const char* word : kBanned) {
    std::size_t i = 0;
    while ((i = find_word(code, word, i)) != std::string::npos) {
      const std::size_t at = i;
      i += std::strlen(word);
      // Member access (foo.rand, foo->rand) is someone else's identifier.
      if (at > 0 && (code[at - 1] == '.' ||
                     (at > 1 && code[at - 2] == '-' && code[at - 1] == '>'))) {
        continue;
      }
      // `rand`/`srand` count only as calls; the others are type/clock
      // names and count bare.
      if (std::strcmp(word, "rand") == 0 || std::strcmp(word, "srand") == 0) {
        const std::size_t p = skip_ws(code, at + std::strlen(word));
        if (p >= code.size() || code[p] != '(') continue;
      }
      flag(at, word, "nondeterministic across runs/platforms; use osap::Rng / the sim clock");
    }
  }

  // time(nullptr) / time(NULL) / time(0).
  std::size_t i = 0;
  while ((i = find_word(code, "time", i)) != std::string::npos) {
    const std::size_t at = i;
    i += 4;
    if (at > 0 && (code[at - 1] == '.' ||
                   (at > 1 && code[at - 2] == '-' && code[at - 1] == '>'))) {
      continue;
    }
    std::size_t p = skip_ws(code, at + 4);
    if (p >= code.size() || code[p] != '(') continue;
    p = skip_ws(code, p + 1);
    for (const char* arg : {"nullptr", "NULL", "0"}) {
      if (code.compare(p, std::strlen(arg), arg) == 0) {
        const std::size_t q = skip_ws(code, p + std::strlen(arg));
        if (q < code.size() && code[q] == ')') {
          flag(at, "time()", "wall clock; the simulation owns the only clock");
        }
        break;
      }
    }
  }

  // Pointer-keyed ordered containers: std::map<T*, ...> / std::set<T*>.
  // Address order is ASLR-dependent, so iteration order — and every
  // decision derived from it — changes run to run.
  for (const char* kw : {"map", "set", "multimap", "multiset"}) {
    std::size_t j = 0;
    while ((j = find_word(code, kw, j)) != std::string::npos) {
      const std::size_t at = j;
      j += std::strlen(kw);
      std::size_t p = skip_ws(code, at + std::strlen(kw));
      if (p >= code.size() || code[p] != '<') continue;
      // First template argument, up to a top-level ',' or '>'.
      int depth = 0;
      bool pointer_key = false;
      for (std::size_t q = p; q < code.size(); ++q) {
        const char c = code[q];
        if (c == '<' || c == '(') ++depth;
        if (c == '>' || c == ')') {
          if (--depth == 0) break;
        }
        if (c == ',' && depth == 1) break;
        if (c == '*' && depth == 1) pointer_key = true;
        if (c == ';') break;
      }
      if (pointer_key) {
        findings.push_back({f.path, f.line_of(at), "DET-2",
                            std::string("pointer-keyed '") + kw +
                                "' — order is ASLR-dependent; key by a stable id "
                                "(pid/tid/region id)"});
      }
    }
  }
}

void check_mut1(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& code = f.code;
  std::size_t i = 0;
  while ((i = find_word(code, "const_cast", i)) != std::string::npos) {
    findings.push_back({f.path, f.line_of(i), "MUT-1",
                        "'const_cast' — mutation hidden behind a const view; make the "
                        "mutating path non-const"});
    i += std::strlen("const_cast");
  }
}

void check_lif1(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& code = f.code;
  for (const char* kw : {"shared_ptr", "make_shared"}) {
    std::size_t i = 0;
    while ((i = find_word(code, kw, i)) != std::string::npos) {
      const std::size_t at = i;
      i += std::strlen(kw);
      std::size_t p = skip_ws(code, at + std::strlen(kw));
      if (p >= code.size() || code[p] != '<') continue;
      p = skip_ws(code, p + 1);
      if (code.compare(p, 5, "std::") == 0) p = skip_ws(code, p + 5);
      if (ident_at(f.code, p) == "function") {
        findings.push_back(
            {f.path, f.line_of(at), "LIF-1",
             std::string(kw) +
                 "<std::function> — a continuation that captures its own shared_ptr "
                 "cycles and never frees; use the recursive-lambda idiom (docs/LINT.md)"});
      }
    }
  }
}

void collect_aud1(const SourceFile& f, std::map<std::string, AuditorPair>& pairs) {
  const fs::path p(f.path);
  const std::string key = (p.parent_path() / p.stem()).string();
  AuditorPair& pair = pairs[key];

  // Classes whose base clause names InvariantAuditor.
  const std::string& code = f.code;
  std::size_t i = 0;
  while ((i = find_word(code, "class", i)) != std::string::npos) {
    const std::size_t at = i;
    i += 5;
    std::size_t p2 = skip_ws(code, at + 5);
    const std::string name = ident_at(code, p2);
    if (name.empty()) continue;
    // Scan the head (up to '{' or ';') for a base clause naming the
    // auditor interface.
    std::size_t head_end = at;
    while (head_end < code.size() && code[head_end] != '{' && code[head_end] != ';') ++head_end;
    if (head_end >= code.size() || code[head_end] != '{') continue;  // fwd decl
    const std::string head = code.substr(at, head_end - at);
    const std::size_t colon = head.find(':');
    if (colon == std::string::npos) continue;
    if (head.find("InvariantAuditor", colon) == std::string::npos) continue;
    pair.classes.emplace_back(name, std::make_pair(&f, f.line_of(at)));
  }

  // Registration calls, whitespace-insensitively.
  std::string dense;
  dense.reserve(code.size());
  for (char c : code) {
    if (!std::isspace(static_cast<unsigned char>(c))) dense += c;
  }
  const auto count = [&dense](const char* needle) {
    int n = 0;
    std::size_t at = 0;
    while ((at = dense.find(needle, at)) != std::string::npos) {
      ++n;
      at += std::strlen(needle);
    }
    return n;
  };
  pair.adds += count("audits().add(this)");
  pair.removes += count("audits().remove(this)");
}

void check_aud1(const std::map<std::string, AuditorPair>& pairs,
                std::vector<Finding>& findings) {
  for (const auto& [key, pair] : pairs) {
    if (pair.classes.empty()) continue;
    const int n = static_cast<int>(pair.classes.size());
    for (const auto& [name, where] : pair.classes) {
      if (pair.adds < n) {
        findings.push_back({where.first->path, where.second, "AUD-1",
                            "auditor '" + name +
                                "' never calls audits().add(this) — its invariants are "
                                "silently unchecked"});
      } else if (pair.adds > n) {
        findings.push_back({where.first->path, where.second, "AUD-1",
                            "auditor '" + name +
                                "' registers with more than one AuditRegistry (" +
                                std::to_string(pair.adds) + " adds for " +
                                std::to_string(n) + " auditor class(es))"});
      }
      if (pair.adds != pair.removes) {
        findings.push_back({where.first->path, where.second, "AUD-1",
                            "auditor '" + name + "' has " + std::to_string(pair.adds) +
                                " audits().add(this) but " + std::to_string(pair.removes) +
                                " audits().remove(this) — the registry holds raw pointers, "
                                "unbalanced registration dangles"});
      }
    }
  }
}

}  // namespace osaplint
