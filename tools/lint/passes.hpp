// osap-lint analysis passes.
//
// The driver runs them in dependency order over one shared vector of
// lexed SourceFiles:
//
//   artifact passes   collect_unordered_names  (DET-1's global name set)
//                     NameRegistry::load       (SID-1's identifier registry)
//                     IdentifierIndex::build   (every name-consuming call site)
//                     LayerManifest::load      (LAY-1's layer DAG)
//                     collect_kind_enums       (EVT-1's enumerator lists)
//   single-file rules check_det1/det2/lif1/mut1, collect_aud1
//   project rules     check_aud1/lay1/sid1/trc1/evt1
//
// Project rules see every file at once: an include edge, a typo'd
// counter name, or an unpaired async span is visible only against the
// whole tree's artifacts.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "model.hpp"

namespace osaplint {

// --- single-file rules (DET-1/DET-2/LIF-1/MUT-1/AUD-1) --------------------

/// Names of variables/members declared as unordered_map/unordered_set, and
/// names of functions returning one, across every scanned file. A global
/// union is deliberate: kernel.cpp iterates Process members declared in
/// process.hpp, so per-file scoping would go blind exactly where it
/// matters. A same-named ordered container elsewhere is a tolerable
/// false-positive source (none exist today; suppress if one appears).
struct UnorderedNames {
  std::set<std::string> vars;
  std::set<std::string> fns;
};

void collect_unordered_names(const SourceFile& f, UnorderedNames& names);
void check_det1(const SourceFile& f, const UnorderedNames& names,
                std::vector<Finding>& findings);
void check_det2(const SourceFile& f, std::vector<Finding>& findings);
void check_lif1(const SourceFile& f, std::vector<Finding>& findings);
void check_mut1(const SourceFile& f, std::vector<Finding>& findings);

struct AuditorPair {
  std::vector<std::pair<std::string, std::pair<const SourceFile*, int>>> classes;
  int adds = 0;
  int removes = 0;
};

void collect_aud1(const SourceFile& f, std::map<std::string, AuditorPair>& pairs);
void check_aud1(const std::map<std::string, AuditorPair>& pairs,
                std::vector<Finding>& findings);

// --- LAY-1: the layer DAG -------------------------------------------------

/// Parsed layers.txt: an ordered list of layers, each naming the source
/// directories that live in it. Rank increases with file order; an
/// include may only reach a strictly lower rank (or stay inside its own
/// directory) — siblings inside one layer stay independent.
class LayerManifest {
 public:
  /// Throws std::runtime_error with a line-numbered message on a
  /// malformed manifest.
  static LayerManifest load(const std::string& path);

  [[nodiscard]] bool loaded() const { return !rank_by_dir_.empty(); }
  /// Rank of the first path component that names a manifest directory,
  /// scanning left to right; -1 when the path maps to no layer.
  [[nodiscard]] int rank_of_path(const std::string& path) const;
  [[nodiscard]] int rank_of_dir(const std::string& dir) const;
  /// Directory a path belongs to ("" when unmapped).
  [[nodiscard]] std::string dir_of_path(const std::string& path) const;
  [[nodiscard]] const std::string& layer_name(int rank) const { return layer_names_.at(static_cast<std::size_t>(rank)); }

 private:
  std::map<std::string, int> rank_by_dir_;
  std::vector<std::string> layer_names_;
};

void check_lay1(const SourceFile& f, const LayerManifest& layers,
                std::vector<Finding>& findings);

// --- SID-1 / TRC-1: the string-identifier index ---------------------------

/// The central identifier registry parsed out of src/trace/names.hpp:
/// every string literal in that header is a declared identifier, keyed
/// both by value and by the constant name it initializes. Entries whose
/// value starts with '.' are per-node suffixes ("nodeN" + suffix at run
/// time); a used name matches a suffix entry by its tail.
class NameRegistry {
 public:
  struct Entry {
    std::string constant;  // kFoo, or "" for a bare literal
    std::string value;
    int line = 0;
  };

  static NameRegistry load(const SourceFile& f);

  [[nodiscard]] bool loaded() const { return !entries_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool declared(const std::string& name) const;
  /// A declared entry within edit distance 1 of `name` (tail-compared for
  /// suffix entries); empty when none.
  [[nodiscard]] std::string near_miss(const std::string& name) const;
  /// Value of the registry constant `ident`; empty when unknown.
  [[nodiscard]] std::string value_of_constant(const std::string& ident) const;

 private:
  std::string path_;
  std::vector<Entry> entries_;
  std::set<std::string> values_;
  std::map<std::string, std::string> value_by_constant_;
};

/// One resolved identifier use at a name-consuming call site.
struct NameUse {
  const SourceFile* file = nullptr;
  int line = 0;
  std::string call;     // counter, gauge, value, instant, async_begin, ...
  std::string name;     // literal text, or a registry constant's value
  bool from_literal = true;
};

/// Every name-consuming call site in the tree: CounterRegistry::counter/
/// gauge/value and Tracer::begin/instant/async_begin/async_end/
/// async_duration. Built once; SID-1 checks literals against the
/// registry, TRC-1 pairs async span names project-wide.
struct IdentifierIndex {
  std::vector<NameUse> uses;

  void build(const SourceFile& f, const NameRegistry& registry);
};

void check_sid1(const IdentifierIndex& index, const NameRegistry& registry,
                std::vector<Finding>& findings);
void check_trc1(const IdentifierIndex& index, std::vector<Finding>& findings);

// --- EVT-1: kind-enum switch exhaustiveness -------------------------------

/// Enumerator lists of the watched kind enums, collected from their
/// definitions anywhere in the scanned set.
struct KindEnums {
  std::map<std::string, std::vector<std::string>> enumerators;
};

bool watched_kind_enum(const std::string& name);
void collect_kind_enums(const SourceFile& f, KindEnums& enums);
void check_evt1(const SourceFile& f, const KindEnums& enums,
                std::vector<Finding>& findings);

}  // namespace osaplint
