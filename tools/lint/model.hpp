// osap-lint file model: one scanned translation unit plus the shared
// comment/string-aware tokenizer front-end every pass reads from.
//
// The linter deliberately has no libclang dependency — a same-length
// `code` view with comments and literals blanked out (newlines kept so
// offsets map to lines), a recorded literal table, and a few structural
// scanners are enough for the patterns the rules match. Each file is
// lexed exactly once; every rule pass, single-file or project-wide,
// works off the same SourceFile.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace osaplint {

// --- rule table -----------------------------------------------------------

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All nine rule classes, in documentation order (docs/LINT.md).
extern const RuleInfo kRules[9];

bool known_rule(const std::string& id);

// --- findings & suppressions ---------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  bool baselined = false;
};

struct Suppression {
  int line = 0;        // line the allow-comment sits on
  int applies_to = 0;  // line whose findings it silences
  std::string rule;
  bool used = false;
};

/// A double-quoted string literal as it appeared in the raw text
/// (escape sequences unprocessed — the identifiers and include paths the
/// project rules read never contain any).
struct Literal {
  std::size_t offset = 0;  // of the first character after the open quote
  std::string text;
};

/// One `#include "..."` directive (angle includes are system headers and
/// out of scope for the layer check).
struct Include {
  int line = 0;
  std::string path;
};

// --- the file model -------------------------------------------------------

struct SourceFile {
  std::string path;  // as reported in findings
  std::string raw;
  std::string code;                      // raw with comments/literals blanked
  std::vector<std::size_t> line_starts;  // offset of each line's first char
  std::map<int, std::string> comments;   // line -> concatenated comment text
  std::vector<Literal> literals;
  std::vector<Include> includes;
  std::vector<Suppression> suppressions;
  bool det1_watched = false;

  [[nodiscard]] int line_of(std::size_t offset) const;

  /// True when the given line holds nothing but whitespace in the code
  /// view (i.e. the line is blank or comment-only).
  [[nodiscard]] bool code_blank(int line) const;

  /// The recorded literals whose offset falls inside [begin, end).
  [[nodiscard]] std::vector<const Literal*> literals_in(std::size_t begin,
                                                        std::size_t end) const;
};

/// Blank out comments and literals, record comment text per line, the
/// literal table, and the include directives.
void strip(SourceFile& f);

/// Parse `allow(RULE) reason` suppression comments (written after the
/// tool-name marker) out of the comment map. A suppression on a
/// comment-only line applies to the next line carrying code; a trailing
/// comment applies to its own line.
void parse_suppressions(SourceFile& f, std::vector<Finding>& findings);

// --- token scanning helpers ----------------------------------------------

bool ident_char(char c);
std::size_t skip_ws(const std::string& code, std::size_t i);

/// Find the next whole-word occurrence of `word` at or after `from`.
std::size_t find_word(const std::string& code, const std::string& word, std::size_t from);

/// With code[i] == open, return the index one past the matching close.
std::size_t skip_balanced(const std::string& code, std::size_t i, char open, char close);

/// Skip a template argument list: code[i] == '<'; returns one past the
/// matching '>'. Handles nesting; no shift operators occur inside the
/// declarations this tool inspects.
std::size_t skip_angles(const std::string& code, std::size_t i);

std::string ident_at(const std::string& code, std::size_t i);

/// Identifier ending just before `end` (exclusive); empty if none.
std::string ident_before(const std::string& code, std::size_t end);

/// True when the Levenshtein distance between a and b is exactly 1 — the
/// SID-1 "near miss" band: one typo'd, dropped, or doubled character.
bool edit_distance_one(const std::string& a, const std::string& b);

}  // namespace osaplint
