// Reporting back-ends and the committed-findings baseline.
//
// The baseline file (tools/lint/baseline.json) is the CI ratchet: known
// findings listed there are demoted to "baselined" (exit stays 0) so a
// rule can land before every pre-existing hit is fixed, while any NEW
// finding still fails the build and any entry that no longer matches is
// flagged as stale so the file only ever shrinks.
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace osaplint {

/// One committed baseline entry. `file` is stored as a repo-relative
/// key (see rel_key) so the file survives being generated from either
/// the repo root or a build directory; matching ignores the line number
/// because unrelated edits shift it.
struct BaselineEntry {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool consumed = false;
};

/// Path from its last component naming a top-level repo root (src,
/// tools, tests, bench, examples) — "/abs/repo/src/os/vmm.cpp" and
/// "src/os/vmm.cpp" both key as "src/os/vmm.cpp".
std::string rel_key(const std::string& path);

/// False (with `err` set) on unreadable file or malformed JSON.
bool load_baseline(const std::string& path, std::vector<BaselineEntry>& entries,
                   std::string& err);

/// Demote findings matching an unconsumed entry by (rel_key(file),
/// rule, message); each entry absorbs at most one finding.
void apply_baseline(std::vector<Finding>& findings, std::vector<BaselineEntry>& entries);

/// Rewrite the baseline to the current unsuppressed findings.
bool save_baseline(const std::string& path, const std::vector<Finding>& findings);

std::string json_escape(const std::string& s);

struct StaleSuppression {
  std::string file;
  int line = 0;
  std::string rule;
};

/// Everything the back-ends print, assembled once by the driver.
struct Report {
  std::vector<Finding> findings;  // sorted by (file, line, rule, message)
  std::vector<BaselineEntry> stale_baseline;
  std::vector<StaleSuppression> stale_suppressions;
  bool baseline_active = false;
  int new_count = 0;
  int baselined = 0;
  int suppressed = 0;
};

void print_text(const Report& r, bool verbose);
void print_json(const Report& r);
/// GitHub workflow-command annotations (::error file=…,line=…) for the
/// new findings, in addition to whatever format already printed.
void print_github(const Report& r);

}  // namespace osaplint
