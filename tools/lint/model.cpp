#include "model.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace osaplint {

const RuleInfo kRules[9] = {
    {"DET-1", "no hash-order traversal of unordered containers in modeled layers"},
    {"DET-2", "no wall-clock, ambient randomness, or pointer-keyed ordered containers"},
    {"LIF-1", "no shared_ptr<std::function> (self-capture continuation cycles)"},
    {"AUD-1", "every InvariantAuditor registers with exactly one AuditRegistry"},
    {"MUT-1", "no const_cast: mutation must not hide behind a const view"},
    {"LAY-1", "includes must follow the layer DAG (tools/lint/layers.txt)"},
    {"SID-1", "counter/gauge/span identifiers must be declared in src/trace/names.hpp"},
    {"TRC-1", "async trace spans must pair begin/end project-wide"},
    {"EVT-1", "switches over kind enums must be exhaustive, with no default:"},
};

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

int SourceFile::line_of(std::size_t offset) const {
  const auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<int>(it - line_starts.begin());
}

bool SourceFile::code_blank(int line) const {
  if (line < 1 || line > static_cast<int>(line_starts.size())) return true;
  std::size_t begin = line_starts[static_cast<std::size_t>(line - 1)];
  std::size_t end = line < static_cast<int>(line_starts.size())
                        ? line_starts[static_cast<std::size_t>(line)]
                        : code.size();
  for (std::size_t i = begin; i < end; ++i) {
    if (!std::isspace(static_cast<unsigned char>(code[i]))) return false;
  }
  return true;
}

std::vector<const Literal*> SourceFile::literals_in(std::size_t begin, std::size_t end) const {
  std::vector<const Literal*> out;
  for (const Literal& lit : literals) {
    if (lit.offset >= begin && lit.offset < end) out.push_back(&lit);
  }
  return out;
}

void strip(SourceFile& f) {
  const std::string& s = f.raw;
  f.code.assign(s.size(), ' ');
  f.line_starts.push_back(0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      f.code[i] = '\n';
      f.line_starts.push_back(i + 1);
    }
  }

  const auto record_comment = [&f](std::size_t begin, std::size_t end) {
    int line = f.line_of(begin);
    std::string text;
    for (std::size_t i = begin; i < end; ++i) {
      if (f.raw[i] == '\n') {
        f.comments[line] += text;
        text.clear();
        ++line;
      } else {
        text += f.raw[i];
      }
    }
    f.comments[line] += text;
  };

  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      std::size_t j = i;
      while (j < s.size() && s[j] != '\n') ++j;
      record_comment(i, j);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < s.size() && !(s[j] == '*' && s[j + 1] == '/')) ++j;
      j = std::min(j + 2, s.size());
      record_comment(i, j);
      i = j;
      continue;
    }
    if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"' &&
        (i == 0 || !ident_char(s[i - 1]))) {
      // Raw string: R"delim( ... )delim"
      std::size_t p = i + 2;
      std::string delim;
      while (p < s.size() && s[p] != '(') delim += s[p++];
      const std::string close = ")" + delim + "\"";
      const std::size_t end = s.find(close, p);
      i = end == std::string::npos ? s.size() : end + close.size();
      continue;
    }
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != c) {
        if (s[j] == '\\') ++j;
        ++j;
      }
      if (c == '"') {
        f.literals.push_back({i + 1, s.substr(i + 1, std::min(j, s.size()) - (i + 1))});
      }
      i = std::min(j + 1, s.size());
      continue;
    }
    f.code[i] = c;
    ++i;
  }

  // Include directives: the directive survives in the code view, the
  // quoted path is blanked there but recorded in the literal table.
  std::size_t at = 0;
  while ((at = find_word(f.code, "include", at)) != std::string::npos) {
    const std::size_t word_end = at + std::strlen("include");
    std::size_t h = at;
    while (h > 0 && std::isspace(static_cast<unsigned char>(f.code[h - 1])) &&
           f.code[h - 1] != '\n') {
      --h;
    }
    at = word_end;
    if (h == 0 || f.code[h - 1] != '#') continue;
    // The quote and the path are blanked in the code view; walk the raw
    // text (same offsets) to find them.
    std::size_t q = word_end;
    while (q < f.raw.size() && (f.raw[q] == ' ' || f.raw[q] == '\t')) ++q;
    if (q >= f.raw.size() || f.raw[q] != '"') continue;
    for (const Literal& lit : f.literals) {
      if (lit.offset == q + 1) {
        f.includes.push_back({f.line_of(at), lit.text});
        break;
      }
    }
  }
}

void parse_suppressions(SourceFile& f, std::vector<Finding>& findings) {
  for (const auto& [line, text] : f.comments) {
    std::size_t at = 0;
    while ((at = text.find("osap-lint:", at)) != std::string::npos) {
      std::size_t p = at + std::strlen("osap-lint:");
      while (p < text.size() && text[p] == ' ') ++p;
      if (text.compare(p, 6, "allow(") != 0) {
        findings.push_back({f.path, line, "SUP",
                            "malformed osap-lint comment — expected 'osap-lint: allow(RULE) reason'"});
        break;
      }
      p += 6;
      const std::size_t close = text.find(')', p);
      if (close == std::string::npos) {
        findings.push_back({f.path, line, "SUP", "unterminated allow( in osap-lint comment"});
        break;
      }
      const std::string rule = text.substr(p, close - p);
      std::string reason = text.substr(close + 1);
      reason.erase(0, reason.find_first_not_of(" \t"));
      if (!known_rule(rule)) {
        findings.push_back({f.path, line, "SUP", "allow(" + rule + ") names an unknown rule"});
      } else if (reason.empty()) {
        findings.push_back(
            {f.path, line, "SUP", "allow(" + rule + ") without a reason — say why"});
      } else {
        Suppression sup;
        sup.line = line;
        sup.rule = rule;
        sup.applies_to = line;
        if (f.code_blank(line)) {
          int next = line + 1;
          const int last = static_cast<int>(f.line_starts.size());
          while (next <= last && f.code_blank(next)) ++next;
          sup.applies_to = next;
        }
        f.suppressions.push_back(sup);
      }
      at = close;
    }
  }
}

std::size_t skip_ws(const std::string& code, std::size_t i) {
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
  return i;
}

std::size_t find_word(const std::string& code, const std::string& word, std::size_t from) {
  std::size_t i = from;
  while ((i = code.find(word, i)) != std::string::npos) {
    const bool left_ok = i == 0 || !ident_char(code[i - 1]);
    const std::size_t end = i + word.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return i;
    i = end;
  }
  return std::string::npos;
}

std::size_t skip_balanced(const std::string& code, std::size_t i, char open, char close) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == open) ++depth;
    if (code[i] == close && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::size_t skip_angles(const std::string& code, std::size_t i) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>' && --depth == 0) return i + 1;
    if (code[i] == ';') return std::string::npos;  // not a template after all
  }
  return std::string::npos;
}

std::string ident_at(const std::string& code, std::size_t i) {
  std::size_t j = i;
  while (j < code.size() && ident_char(code[j])) ++j;
  return code.substr(i, j - i);
}

std::string ident_before(const std::string& code, std::size_t end) {
  std::size_t i = end;
  while (i > 0 && ident_char(code[i - 1])) --i;
  return code.substr(i, end - i);
}

bool edit_distance_one(const std::string& a, const std::string& b) {
  if (a == b) return false;
  const std::size_t la = a.size();
  const std::size_t lb = b.size();
  if (la > lb + 1 || lb > la + 1) return false;
  if (la == lb) {
    int diff = 0;
    for (std::size_t i = 0; i < la; ++i) {
      if (a[i] != b[i] && ++diff > 1) return false;
    }
    return diff == 1;
  }
  // One insertion: walk the longer string past a single extra character.
  const std::string& lng = la > lb ? a : b;
  const std::string& sht = la > lb ? b : a;
  std::size_t i = 0;
  std::size_t j = 0;
  bool skipped = false;
  while (i < lng.size() && j < sht.size()) {
    if (lng[i] == sht[j]) {
      ++i;
      ++j;
    } else if (!skipped) {
      skipped = true;
      ++i;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace osaplint
