// Project-wide passes: the layer DAG (LAY-1), the string-identifier
// registry and index (SID-1), async span pairing (TRC-1), and kind-enum
// switch exhaustiveness (EVT-1). These are the rules the old
// single-file linter could not express: each one needs an artifact
// assembled from every scanned translation unit before any file can be
// judged.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "passes.hpp"

namespace osaplint {

// --- LAY-1 ----------------------------------------------------------------

LayerManifest LayerManifest::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open layer manifest " + path);
  LayerManifest m;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string name;
    if (!(fields >> name)) continue;  // blank / comment-only
    if (name.empty() || name.back() != ':') {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": expected 'layer-name: dir dir ...'");
    }
    name.pop_back();
    const int rank = static_cast<int>(m.layer_names_.size());
    m.layer_names_.push_back(name);
    std::string dir;
    int dirs = 0;
    while (fields >> dir) {
      if (!m.rank_by_dir_.emplace(dir, rank).second) {
        throw std::runtime_error(path + ":" + std::to_string(lineno) + ": directory '" + dir +
                                 "' already assigned to a lower layer");
      }
      ++dirs;
    }
    if (dirs == 0) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": layer '" + name +
                               "' names no directories");
    }
  }
  if (m.layer_names_.empty()) throw std::runtime_error(path + ": empty layer manifest");
  return m;
}

namespace {

/// First '/'-separated component of `path` that names a manifest
/// directory; empty when none does.
std::string first_mapped_component(const std::map<std::string, int>& ranks,
                                   const std::string& path) {
  std::size_t at = 0;
  while (at < path.size()) {
    const std::size_t slash = path.find('/', at);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    const std::string part = path.substr(at, end - at);
    if (ranks.contains(part)) return part;
    if (slash == std::string::npos) break;
    at = slash + 1;
  }
  return {};
}

}  // namespace

int LayerManifest::rank_of_path(const std::string& path) const {
  const std::string dir = first_mapped_component(rank_by_dir_, path);
  return dir.empty() ? -1 : rank_by_dir_.at(dir);
}

int LayerManifest::rank_of_dir(const std::string& dir) const {
  const auto it = rank_by_dir_.find(dir);
  return it == rank_by_dir_.end() ? -1 : it->second;
}

std::string LayerManifest::dir_of_path(const std::string& path) const {
  return first_mapped_component(rank_by_dir_, path);
}

void check_lay1(const SourceFile& f, const LayerManifest& layers,
                std::vector<Finding>& findings) {
  if (!layers.loaded()) return;
  const std::string from_dir = layers.dir_of_path(f.path);
  if (from_dir.empty()) return;  // file lives outside the layered tree
  const int from_rank = layers.rank_of_dir(from_dir);
  for (const Include& inc : f.includes) {
    const std::string to_dir = layers.dir_of_path(inc.path);
    // Same-directory includes carry no path component and unmapped
    // targets are out of the DAG's jurisdiction.
    if (to_dir.empty() || to_dir == from_dir) continue;
    const int to_rank = layers.rank_of_dir(to_dir);
    if (to_rank < from_rank) continue;  // downward edge: legal
    const char* shape = to_rank == from_rank ? "sideways into sibling" : "upward into";
    findings.push_back({f.path, inc.line, "LAY-1",
                        "include of \"" + inc.path + "\" reaches " + shape + " '" + to_dir +
                            "' (layer " + layers.layer_name(to_rank) + "); '" + from_dir +
                            "' (layer " + layers.layer_name(from_rank) +
                            ") may only include below itself — see tools/lint/layers.txt"});
  }
}

// --- SID-1 ----------------------------------------------------------------

NameRegistry NameRegistry::load(const SourceFile& f) {
  NameRegistry r;
  r.path_ = f.path;
  for (const Literal& lit : f.literals) {
    Entry e;
    e.value = lit.text;
    e.line = f.line_of(lit.offset);
    // The initialized constant: the identifier before the '=' that
    // precedes this literal's open quote.
    std::size_t p = lit.offset - 1;  // the (blanked) open quote
    while (p > 0 && std::isspace(static_cast<unsigned char>(f.code[p - 1]))) --p;
    if (p > 0 && f.code[p - 1] == '=') {
      std::size_t q = p - 1;
      while (q > 0 && std::isspace(static_cast<unsigned char>(f.code[q - 1]))) --q;
      e.constant = ident_before(f.code, q);
    }
    r.values_.insert(e.value);
    if (!e.constant.empty()) r.value_by_constant_[e.constant] = e.value;
    r.entries_.push_back(std::move(e));
  }
  return r;
}

bool NameRegistry::declared(const std::string& name) const {
  if (values_.contains(name)) return true;
  for (const Entry& e : entries_) {
    if (e.value.size() > 1 && e.value.front() == '.' && name.size() > e.value.size() &&
        name.compare(name.size() - e.value.size(), e.value.size(), e.value) == 0) {
      return true;  // per-node suffix entry: "<node>.swap_out_io_bytes"
    }
  }
  return false;
}

std::string NameRegistry::near_miss(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.value.size() > 1 && e.value.front() == '.') {
      // Suffix entry: compare against tails one character shorter,
      // equal, and longer — an edit inside the suffix shifts its start.
      for (std::size_t n : {e.value.size() - 1, e.value.size(), e.value.size() + 1}) {
        if (n == 0 || n >= name.size()) continue;
        if (edit_distance_one(name.substr(name.size() - n), e.value)) return e.value;
      }
    }
    if (edit_distance_one(name, e.value)) return e.value;
  }
  return {};
}

std::string NameRegistry::value_of_constant(const std::string& ident) const {
  const auto it = value_by_constant_.find(ident);
  return it == value_by_constant_.end() ? std::string{} : it->second;
}

namespace {

/// The name-consuming calls and which argument carries the identifier.
struct NameCall {
  const char* fn;
  int name_arg;
};

constexpr NameCall kNameCalls[] = {
    {"counter", 0},        {"gauge", 0},     {"value", 0},     {"async_duration", 0},
    {"instant", 1},        {"begin", 1},     {"async_begin", 1}, {"async_end", 1},
};

/// Argument spans of the call whose '(' is at `open` in the code view:
/// [begin, end) offsets split at top-level commas (()/[]/{} tracked; the
/// name arguments these rules read never involve template commas).
std::vector<std::pair<std::size_t, std::size_t>> split_args(const std::string& code,
                                                            std::size_t open,
                                                            std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      args.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  args.emplace_back(begin, close);
  return args;
}

}  // namespace

void IdentifierIndex::build(const SourceFile& f, const NameRegistry& registry) {
  if (registry.loaded() && f.path == registry.path()) return;
  const std::string& code = f.code;
  for (const NameCall& call : kNameCalls) {
    std::size_t i = 0;
    while ((i = find_word(code, call.fn, i)) != std::string::npos) {
      const std::size_t at = i;
      i += std::strlen(call.fn);
      const std::size_t open = skip_ws(code, at + std::strlen(call.fn));
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t end = skip_balanced(code, open, '(', ')');
      if (end == std::string::npos) continue;
      const auto args = split_args(code, open, end - 1);
      if (static_cast<std::size_t>(call.name_arg) >= args.size()) continue;
      const auto [abegin, aend] = args[static_cast<std::size_t>(call.name_arg)];

      // Literals in the name slot, including both arms of a ternary and
      // any composed-suffix pieces.
      for (const Literal* lit : f.literals_in(abegin, aend)) {
        uses.push_back({&f, f.line_of(lit->offset), call.fn, lit->text, true});
      }
      // Identifiers resolving to registry constants (names::kFoo).
      for (std::size_t p = abegin; p < aend;) {
        if (!ident_char(code[p])) {
          ++p;
          continue;
        }
        const std::string ident = ident_at(code, p);
        p += ident.size();
        const std::string val = registry.value_of_constant(ident);
        if (!val.empty()) uses.push_back({&f, f.line_of(p - 1), call.fn, val, false});
      }
    }
  }
}

void check_sid1(const IdentifierIndex& index, const NameRegistry& registry,
                std::vector<Finding>& findings) {
  if (!registry.loaded()) return;
  for (const NameUse& use : index.uses) {
    if (!use.from_literal) continue;  // registry constants are declared by construction
    if (use.name.empty() || registry.declared(use.name)) continue;
    const std::string miss = registry.near_miss(use.name);
    std::string msg;
    if (!miss.empty()) {
      msg = "identifier \"" + use.name + "\" is one edit away from registered \"" + miss +
            "\" — typo, or a genuinely new name missing from " + registry.path();
    } else {
      msg = "identifier \"" + use.name + "\" is not declared in " + registry.path() +
            " — register it (or use the registry constant)";
    }
    findings.push_back({use.file->path, use.line, "SID-1", std::move(msg)});
  }
}

// --- TRC-1 ----------------------------------------------------------------

void check_trc1(const IdentifierIndex& index, std::vector<Finding>& findings) {
  struct Side {
    int count = 0;
    const SourceFile* file = nullptr;
    int line = 0;
  };
  std::map<std::string, std::pair<Side, Side>> spans;  // name -> (begin, end)
  for (const NameUse& use : index.uses) {
    Side* side = nullptr;
    if (use.call == "async_begin") side = &spans[use.name].first;
    if (use.call == "async_end") side = &spans[use.name].second;
    if (side == nullptr) continue;
    if (side->count++ == 0) {
      side->file = use.file;
      side->line = use.line;
    }
  }
  for (const auto& [name, sides] : spans) {
    const auto& [b, e] = sides;
    if (b.count > 0 && e.count == 0) {
      findings.push_back({b.file->path, b.line, "TRC-1",
                          "async span \"" + name +
                              "\" has async_begin but no async_end anywhere in the tree — "
                              "the span never closes in the trace"});
    } else if (e.count > 0 && b.count == 0) {
      findings.push_back({e.file->path, e.line, "TRC-1",
                          "async span \"" + name +
                              "\" has async_end but no async_begin anywhere in the tree — "
                              "the end is orphaned"});
    }
  }
}

// --- EVT-1 ----------------------------------------------------------------

bool watched_kind_enum(const std::string& name) {
  // The kind enums whose values grow when the model grows: cluster
  // events, and the heartbeat report/action messages. A default: in a
  // switch over one of these swallows every future kind silently.
  return name == "ClusterEventType" || name == "ReportKind" || name == "ActionKind";
}

void collect_kind_enums(const SourceFile& f, KindEnums& enums) {
  const std::string& code = f.code;
  std::size_t i = 0;
  while ((i = find_word(code, "enum", i)) != std::string::npos) {
    i += 4;
    std::size_t p = skip_ws(code, i);
    for (const char* kw : {"class", "struct"}) {
      if (ident_at(code, p) == kw) p = skip_ws(code, p + std::strlen(kw));
    }
    const std::string name = ident_at(code, p);
    if (name.empty() || !watched_kind_enum(name)) continue;
    p = skip_ws(code, p + name.size());
    if (p < code.size() && code[p] == ':') {  // underlying type
      while (p < code.size() && code[p] != '{' && code[p] != ';') ++p;
    }
    if (p >= code.size() || code[p] != '{') continue;  // opaque declaration
    const std::size_t close = skip_balanced(code, p, '{', '}');
    if (close == std::string::npos) continue;
    std::vector<std::string> values;
    for (const auto& [abegin, aend] : split_args(code, p, close - 1)) {
      const std::size_t v = skip_ws(code, abegin);
      if (v >= aend) continue;
      const std::string enumerator = ident_at(code, v);
      if (!enumerator.empty()) values.push_back(enumerator);
    }
    if (!values.empty()) enums.enumerators[name] = std::move(values);
  }
}

namespace {

/// Scan one switch body for its own case/default labels, hopping over
/// nested switches (their labels belong to the inner statement).
void scan_switch_body(const std::string& code, std::size_t begin, std::size_t end,
                      std::string& enum_name, std::set<std::string>& covered,
                      std::size_t& default_at) {
  std::size_t i = begin;
  while (i < end) {
    const std::size_t nested = find_word(code, "switch", i);
    const std::size_t kase = find_word(code, "case", i);
    const std::size_t dflt = find_word(code, "default", i);
    std::size_t next = std::min({nested, kase, dflt});
    if (next == std::string::npos || next >= end) return;
    if (next == nested) {
      std::size_t p = skip_ws(code, nested + 6);
      if (p < end && code[p] == '(') p = skip_balanced(code, p, '(', ')');
      p = p == std::string::npos ? end : skip_ws(code, p);
      if (p < end && code[p] == '{') {
        const std::size_t body_end = skip_balanced(code, p, '{', '}');
        i = body_end == std::string::npos ? end : body_end;
      } else {
        i = nested + 6;
      }
      continue;
    }
    if (next == dflt) {
      const std::size_t p = skip_ws(code, dflt + 7);
      if (p < end && code[p] == ':') default_at = dflt;
      i = dflt + 7;
      continue;
    }
    // A case label: the enumerator is the identifier before the ':',
    // the enum its '::'-qualifier.
    std::size_t colon = kase + 4;
    while (colon < end && code[colon] != ':' && code[colon] != ';') ++colon;
    // Step over '::' scope separators inside the label.
    while (colon + 1 < end && code[colon] == ':' && code[colon + 1] == ':') {
      colon += 2;
      while (colon < end && code[colon] != ':' && code[colon] != ';') ++colon;
    }
    if (colon >= end || code[colon] != ':') {
      i = kase + 4;
      continue;
    }
    const std::string enumerator = ident_before(code, colon);
    std::size_t q = colon - enumerator.size();
    if (q >= 2 && code[q - 1] == ':' && code[q - 2] == ':') {
      const std::string qualifier = ident_before(code, q - 2);
      if (!qualifier.empty() && !enumerator.empty()) {
        if (enum_name.empty()) enum_name = qualifier;
        if (qualifier == enum_name) covered.insert(enumerator);
      }
    }
    i = colon + 1;
  }
}

}  // namespace

void check_evt1(const SourceFile& f, const KindEnums& enums,
                std::vector<Finding>& findings) {
  const std::string& code = f.code;
  std::size_t i = 0;
  while ((i = find_word(code, "switch", i)) != std::string::npos) {
    const std::size_t at = i;
    i += 6;
    std::size_t p = skip_ws(code, at + 6);
    if (p >= code.size() || code[p] != '(') continue;
    p = skip_balanced(code, p, '(', ')');
    if (p == std::string::npos) continue;
    p = skip_ws(code, p);
    if (p >= code.size() || code[p] != '{') continue;
    const std::size_t body_end = skip_balanced(code, p, '{', '}');
    if (body_end == std::string::npos) continue;

    std::string enum_name;
    std::set<std::string> covered;
    std::size_t default_at = std::string::npos;
    scan_switch_body(code, p + 1, body_end - 1, enum_name, covered, default_at);
    if (enum_name.empty() || !watched_kind_enum(enum_name)) {
      i = at + 6;  // inner switches still get their own visit
      continue;
    }

    if (default_at != std::string::npos) {
      findings.push_back({f.path, f.line_of(default_at), "EVT-1",
                          "default: in a switch over " + enum_name +
                              " — new kinds would be swallowed silently; enumerate every "
                              "case so additions fail the build"});
    } else {
      const auto def = enums.enumerators.find(enum_name);
      if (def != enums.enumerators.end()) {
        std::string missing;
        int n = 0;
        for (const std::string& v : def->second) {
          if (!covered.contains(v)) {
            missing += (n++ ? ", " : "") + v;
          }
        }
        if (n > 0) {
          findings.push_back({f.path, f.line_of(at), "EVT-1",
                              "switch over " + enum_name + " does not handle " +
                                  std::to_string(n) + " kind(s): " + missing});
        }
      }
    }
    i = at + 6;
  }
}

}  // namespace osaplint
