// osap-lint — the project's determinism & lifetime static-analysis pass.
//
// The simulator's claim to validity is that two runs of one scenario
// produce byte-identical event streams (docs/LINT.md). This tool walks
// C++ sources and enforces the codified rules that protect that claim,
// with no libclang dependency — a comment/string-aware tokenizer plus
// structural matchers is enough for the patterns involved:
//
//   DET-1  no range-for / iterator traversal of unordered_map/set state
//          in the modeled layers (os, sim, sched, hadoop, yarn, hdfs,
//          preempt, net). Hash order depends on the standard library and
//          insertion history; use det::sorted_keys() or an ordered
//          container.
//   DET-2  no wall-clock, rand()/srand(), std::random_device, std::
//          <random> engines/distributions (all randomness flows through
//          osap::Rng), and no pointer-keyed ordered containers (address
//          order is ASLR-dependent).
//   LIF-1  no shared_ptr<std::function>: the self-capturing continuation
//          pattern cycles and never frees (the PR-1 leak class); use the
//          cycle-free recursive-lambda idiom.
//   AUD-1  every class deriving InvariantAuditor registers with exactly
//          one AuditRegistry: one audits().add(this) balanced by one
//          audits().remove(this) in its header/source pair.
//   MUT-1  no const_cast. Mutation hidden behind a const view is how the
//          old EventQueue::next_time() advanced its calendar cursor from
//          a const method — invisible to readers and to the audit layer.
//          Make the mutating path non-const instead.
//
// A finding is silenced by an inline comment on the same line or the
// line above:   // osap-lint: allow(DET-1) <reason>
// The reason is mandatory; suppressions are counted and reported.
//
// Usage: osap_lint [--list-rules] [-v] <file-or-dir>...
// Exit:  0 clean (possibly with suppressed findings), 1 violations,
//        2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// --- rule table -----------------------------------------------------------

struct RuleInfo {
  const char* id;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"DET-1", "no hash-order traversal of unordered containers in modeled layers"},
    {"DET-2", "no wall-clock, ambient randomness, or pointer-keyed ordered containers"},
    {"LIF-1", "no shared_ptr<std::function> (self-capture continuation cycles)"},
    {"AUD-1", "every InvariantAuditor registers with exactly one AuditRegistry"},
    {"MUT-1", "no const_cast: mutation must not hide behind a const view"},
};

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

/// Layer directories whose state feeds scheduling/eviction decisions;
/// DET-1 applies to files living under any of them.
constexpr const char* kWatchedDirs[] = {"os",   "sim",  "sched",   "hadoop",
                                        "yarn", "hdfs", "preempt", "net",
                                        "trace", "fault"};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
};

struct Suppression {
  int line = 0;        // line the allow-comment sits on
  int applies_to = 0;  // line whose findings it silences
  std::string rule;
  bool used = false;
};

// --- lexing ---------------------------------------------------------------

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

/// One scanned translation unit: raw text, a same-length `code` view with
/// comments and literals blanked out (newlines preserved), and the
/// comment text per line for suppression parsing.
struct SourceFile {
  std::string path;       // as reported in findings
  std::string raw;
  std::string code;
  std::vector<std::size_t> line_starts;  // offset of each line's first char
  std::map<int, std::string> comments;   // line -> concatenated comment text
  std::vector<Suppression> suppressions;
  bool det1_watched = false;

  [[nodiscard]] int line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<int>(it - line_starts.begin());
  }

  /// True when the given line holds nothing but whitespace in the code
  /// view (i.e. the line is blank or comment-only).
  [[nodiscard]] bool code_blank(int line) const {
    if (line < 1 || line > static_cast<int>(line_starts.size())) return true;
    std::size_t begin = line_starts[static_cast<std::size_t>(line - 1)];
    std::size_t end = line < static_cast<int>(line_starts.size())
                          ? line_starts[static_cast<std::size_t>(line)]
                          : code.size();
    for (std::size_t i = begin; i < end; ++i) {
      if (!std::isspace(static_cast<unsigned char>(code[i]))) return false;
    }
    return true;
  }
};

/// Blank out comments, string and character literals (newlines kept so
/// offsets map to lines); record comment text per line.
void strip(SourceFile& f) {
  const std::string& s = f.raw;
  f.code.assign(s.size(), ' ');
  f.line_starts.push_back(0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      f.code[i] = '\n';
      f.line_starts.push_back(i + 1);
    }
  }

  const auto record_comment = [&f](std::size_t begin, std::size_t end) {
    int line = f.line_of(begin);
    std::string text;
    for (std::size_t i = begin; i < end; ++i) {
      if (f.raw[i] == '\n') {
        f.comments[line] += text;
        text.clear();
        ++line;
      } else {
        text += f.raw[i];
      }
    }
    f.comments[line] += text;
  };

  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      std::size_t j = i;
      while (j < s.size() && s[j] != '\n') ++j;
      record_comment(i, j);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < s.size() && !(s[j] == '*' && s[j + 1] == '/')) ++j;
      j = std::min(j + 2, s.size());
      record_comment(i, j);
      i = j;
      continue;
    }
    if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"' &&
        (i == 0 || !ident_char(s[i - 1]))) {
      // Raw string: R"delim( ... )delim"
      std::size_t p = i + 2;
      std::string delim;
      while (p < s.size() && s[p] != '(') delim += s[p++];
      const std::string close = ")" + delim + "\"";
      const std::size_t end = s.find(close, p);
      i = end == std::string::npos ? s.size() : end + close.size();
      continue;
    }
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != c) {
        if (s[j] == '\\') ++j;
        ++j;
      }
      i = std::min(j + 1, s.size());
      continue;
    }
    f.code[i] = c;
    ++i;
  }
}

/// Parse `osap-lint: allow(RULE) reason` suppressions out of the comment
/// map. A suppression on a comment-only line applies to the next line
/// carrying code; a trailing comment applies to its own line.
void parse_suppressions(SourceFile& f, std::vector<Finding>& findings) {
  for (const auto& [line, text] : f.comments) {
    std::size_t at = 0;
    while ((at = text.find("osap-lint:", at)) != std::string::npos) {
      std::size_t p = at + std::strlen("osap-lint:");
      while (p < text.size() && text[p] == ' ') ++p;
      if (text.compare(p, 6, "allow(") != 0) {
        findings.push_back({f.path, line, "SUP",
                            "malformed osap-lint comment — expected 'osap-lint: allow(RULE) reason'"});
        break;
      }
      p += 6;
      const std::size_t close = text.find(')', p);
      if (close == std::string::npos) {
        findings.push_back({f.path, line, "SUP", "unterminated allow( in osap-lint comment"});
        break;
      }
      const std::string rule = text.substr(p, close - p);
      std::string reason = text.substr(close + 1);
      reason.erase(0, reason.find_first_not_of(" \t"));
      if (!known_rule(rule)) {
        findings.push_back({f.path, line, "SUP", "allow(" + rule + ") names an unknown rule"});
      } else if (reason.empty()) {
        findings.push_back(
            {f.path, line, "SUP", "allow(" + rule + ") without a reason — say why"});
      } else {
        Suppression sup;
        sup.line = line;
        sup.rule = rule;
        sup.applies_to = line;
        if (f.code_blank(line)) {
          int next = line + 1;
          const int last = static_cast<int>(f.line_starts.size());
          while (next <= last && f.code_blank(next)) ++next;
          sup.applies_to = next;
        }
        f.suppressions.push_back(sup);
      }
      at = close;
    }
  }
}

// --- token scanning helpers ----------------------------------------------

std::size_t skip_ws(const std::string& code, std::size_t i) {
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
  return i;
}

/// Find the next whole-word occurrence of `word` at or after `from`.
std::size_t find_word(const std::string& code, const std::string& word, std::size_t from) {
  std::size_t i = from;
  while ((i = code.find(word, i)) != std::string::npos) {
    const bool left_ok = i == 0 || !ident_char(code[i - 1]);
    const std::size_t end = i + word.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return i;
    i = end;
  }
  return std::string::npos;
}

/// With code[i] == open, return the index one past the matching close.
std::size_t skip_balanced(const std::string& code, std::size_t i, char open, char close) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == open) ++depth;
    if (code[i] == close && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Skip a template argument list: code[i] == '<'; returns one past the
/// matching '>'. Handles nesting; no shift operators occur inside the
/// declarations this tool inspects.
std::size_t skip_angles(const std::string& code, std::size_t i) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>' && --depth == 0) return i + 1;
    if (code[i] == ';') return std::string::npos;  // not a template after all
  }
  return std::string::npos;
}

std::string ident_at(const std::string& code, std::size_t i) {
  std::size_t j = i;
  while (j < code.size() && ident_char(code[j])) ++j;
  return code.substr(i, j - i);
}

/// Identifier ending just before `end` (exclusive); empty if none.
std::string ident_before(const std::string& code, std::size_t end) {
  std::size_t i = end;
  while (i > 0 && ident_char(code[i - 1])) --i;
  return code.substr(i, end - i);
}

// --- pass 1: collect hash-ordered state names -----------------------------

/// Names of variables/members declared as unordered_map/unordered_set, and
/// names of functions returning one, across every scanned file. A global
/// union is deliberate: kernel.cpp iterates Process members declared in
/// process.hpp, so per-file scoping would go blind exactly where it
/// matters. A same-named ordered container elsewhere is a tolerable
/// false-positive source (none exist today; suppress if one appears).
struct UnorderedNames {
  std::set<std::string> vars;
  std::set<std::string> fns;
};

void collect_unordered_names(const SourceFile& f, UnorderedNames& names) {
  for (const char* kw : {"unordered_map", "unordered_set"}) {
    std::size_t i = 0;
    while ((i = find_word(f.code, kw, i)) != std::string::npos) {
      std::size_t p = skip_ws(f.code, i + std::strlen(kw));
      i += std::strlen(kw);
      if (p >= f.code.size() || f.code[p] != '<') continue;
      p = skip_angles(f.code, p);
      if (p == std::string::npos) continue;
      p = skip_ws(f.code, p);
      while (p < f.code.size() && (f.code[p] == '&' || f.code[p] == '*')) {
        p = skip_ws(f.code, p + 1);
      }
      const std::string name = ident_at(f.code, p);
      if (name.empty()) continue;
      p = skip_ws(f.code, p + name.size());
      if (p >= f.code.size()) continue;
      const char next = f.code[p];
      if (next == ';' || next == '=' || next == '{' || next == ',' || next == ')') {
        names.vars.insert(name);  // member / variable / parameter
      } else if (next == '(') {
        names.fns.insert(name);  // accessor returning the container
      }
    }
  }
}

// --- DET-1 ----------------------------------------------------------------

void check_det1(const SourceFile& f, const UnorderedNames& names,
                std::vector<Finding>& findings) {
  if (!f.det1_watched) return;
  const std::string& code = f.code;

  // Range-for over hash-ordered state.
  std::size_t i = 0;
  while ((i = find_word(code, "for", i)) != std::string::npos) {
    std::size_t p = skip_ws(code, i + 3);
    i += 3;
    if (p >= code.size() || code[p] != '(') continue;
    const std::size_t close = skip_balanced(code, p, '(', ')');
    if (close == std::string::npos) continue;
    // Top-level ':' (not '::') splits a range-for header.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t j = p + 1; j + 1 < close; ++j) {
      const char c = code[j];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (c == ':' && depth == 0) {
        if (code[j + 1] == ':' || (j > 0 && code[j - 1] == ':')) continue;
        colon = j;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    std::size_t rb = colon + 1;
    std::size_t re = close - 1;
    while (rb < re && std::isspace(static_cast<unsigned char>(code[rb]))) ++rb;
    while (re > rb && std::isspace(static_cast<unsigned char>(code[re - 1]))) --re;
    if (re <= rb) continue;

    std::string culprit;
    if (code[re - 1] == ')') {
      // Call expression: attribute to the callee — `p.regions()` is a
      // hash-ordered accessor, `det::sorted_keys(m)` is the sanctioned
      // wrapper and passes.
      std::size_t open = re - 1;
      int d = 0;
      for (;; --open) {
        if (code[open] == ')') ++d;
        if (code[open] == '(' && --d == 0) break;
        if (open == rb) break;
      }
      const std::string callee = ident_before(code, open);
      if (names.fns.contains(callee)) culprit = callee + "()";
    } else {
      // Plain expression: attribute to the trailing identifier —
      // `regions_`, `p.regions_`, `obs_->phases` all end in the member.
      const std::string last = ident_before(code, re);
      if (names.vars.contains(last)) culprit = last;
    }
    if (!culprit.empty()) {
      findings.push_back({f.path, f.line_of(colon), "DET-1",
                          "range-for over hash-ordered '" + culprit +
                              "' — iterate det::sorted_keys() or an ordered container"});
    }
  }

  // Iterator traversal: name.begin() / cbegin() / rbegin().
  for (const char* fn : {"begin", "cbegin", "rbegin"}) {
    std::size_t j = 0;
    while ((j = find_word(code, fn, j)) != std::string::npos) {
      const std::size_t at = j;
      j += std::strlen(fn);
      const std::size_t after = skip_ws(code, j);
      if (after >= code.size() || code[after] != '(') continue;
      if (at == 0 || code[at - 1] != '.') continue;
      const std::string owner = ident_before(code, at - 1);
      if (names.vars.contains(owner)) {
        findings.push_back({f.path, f.line_of(at), "DET-1",
                            "iterator traversal of hash-ordered '" + owner +
                                "' — iterate det::sorted_keys() or an ordered container"});
      }
    }
  }
}

// --- DET-2 ----------------------------------------------------------------

void check_det2(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& code = f.code;

  const auto flag = [&](std::size_t at, const std::string& what, const char* why) {
    findings.push_back({f.path, f.line_of(at), "DET-2", "'" + what + "' — " + why});
  };

  // Ambient randomness / wall clocks. All randomness flows through
  // osap::Rng; the only clock is the virtual one.
  constexpr const char* kBanned[] = {
      "rand",           "srand",          "random_device",        "random_shuffle",
      "mt19937",        "mt19937_64",     "minstd_rand",          "minstd_rand0",
      "default_random_engine",            "ranlux24",             "ranlux48",
      "knuth_b",        "system_clock",   "steady_clock",         "high_resolution_clock",
      "gettimeofday",   "clock_gettime",
  };
  for (const char* word : kBanned) {
    std::size_t i = 0;
    while ((i = find_word(code, word, i)) != std::string::npos) {
      const std::size_t at = i;
      i += std::strlen(word);
      // Member access (foo.rand, foo->rand) is someone else's identifier.
      if (at > 0 && (code[at - 1] == '.' ||
                     (at > 1 && code[at - 2] == '-' && code[at - 1] == '>'))) {
        continue;
      }
      // `rand`/`srand` count only as calls; the others are type/clock
      // names and count bare.
      if (std::strcmp(word, "rand") == 0 || std::strcmp(word, "srand") == 0) {
        const std::size_t p = skip_ws(code, at + std::strlen(word));
        if (p >= code.size() || code[p] != '(') continue;
      }
      flag(at, word, "nondeterministic across runs/platforms; use osap::Rng / the sim clock");
    }
  }

  // time(nullptr) / time(NULL) / time(0).
  std::size_t i = 0;
  while ((i = find_word(code, "time", i)) != std::string::npos) {
    const std::size_t at = i;
    i += 4;
    if (at > 0 && (code[at - 1] == '.' ||
                   (at > 1 && code[at - 2] == '-' && code[at - 1] == '>'))) {
      continue;
    }
    std::size_t p = skip_ws(code, at + 4);
    if (p >= code.size() || code[p] != '(') continue;
    p = skip_ws(code, p + 1);
    for (const char* arg : {"nullptr", "NULL", "0"}) {
      if (code.compare(p, std::strlen(arg), arg) == 0) {
        const std::size_t q = skip_ws(code, p + std::strlen(arg));
        if (q < code.size() && code[q] == ')') {
          flag(at, "time()", "wall clock; the simulation owns the only clock");
        }
        break;
      }
    }
  }

  // Pointer-keyed ordered containers: std::map<T*, ...> / std::set<T*>.
  // Address order is ASLR-dependent, so iteration order — and every
  // decision derived from it — changes run to run.
  for (const char* kw : {"map", "set", "multimap", "multiset"}) {
    std::size_t j = 0;
    while ((j = find_word(code, kw, j)) != std::string::npos) {
      const std::size_t at = j;
      j += std::strlen(kw);
      std::size_t p = skip_ws(code, at + std::strlen(kw));
      if (p >= code.size() || code[p] != '<') continue;
      // First template argument, up to a top-level ',' or '>'.
      int depth = 0;
      bool pointer_key = false;
      for (std::size_t q = p; q < code.size(); ++q) {
        const char c = code[q];
        if (c == '<' || c == '(') ++depth;
        if (c == '>' || c == ')') {
          if (--depth == 0) break;
        }
        if (c == ',' && depth == 1) break;
        if (c == '*' && depth == 1) pointer_key = true;
        if (c == ';') break;
      }
      if (pointer_key) {
        findings.push_back({f.path, f.line_of(at), "DET-2",
                            std::string("pointer-keyed '") + kw +
                                "' — order is ASLR-dependent; key by a stable id "
                                "(pid/tid/region id)"});
      }
    }
  }
}

// --- MUT-1 ----------------------------------------------------------------

void check_mut1(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& code = f.code;
  std::size_t i = 0;
  while ((i = find_word(code, "const_cast", i)) != std::string::npos) {
    findings.push_back({f.path, f.line_of(i), "MUT-1",
                        "'const_cast' — mutation hidden behind a const view; make the "
                        "mutating path non-const"});
    i += std::strlen("const_cast");
  }
}

// --- LIF-1 ----------------------------------------------------------------

void check_lif1(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& code = f.code;
  for (const char* kw : {"shared_ptr", "make_shared"}) {
    std::size_t i = 0;
    while ((i = find_word(code, kw, i)) != std::string::npos) {
      const std::size_t at = i;
      i += std::strlen(kw);
      std::size_t p = skip_ws(code, at + std::strlen(kw));
      if (p >= code.size() || code[p] != '<') continue;
      p = skip_ws(code, p + 1);
      if (code.compare(p, 5, "std::") == 0) p = skip_ws(code, p + 5);
      if (ident_at(f.code, p) == "function") {
        findings.push_back(
            {f.path, f.line_of(at), "LIF-1",
             std::string(kw) +
                 "<std::function> — a continuation that captures its own shared_ptr "
                 "cycles and never frees; use the recursive-lambda idiom (docs/LINT.md)"});
      }
    }
  }
}

// --- AUD-1 ----------------------------------------------------------------

struct AuditorPair {
  std::vector<std::pair<std::string, std::pair<const SourceFile*, int>>> classes;
  int adds = 0;
  int removes = 0;
};

void collect_aud1(const SourceFile& f, std::map<std::string, AuditorPair>& pairs) {
  const fs::path p(f.path);
  const std::string key = (p.parent_path() / p.stem()).string();
  AuditorPair& pair = pairs[key];

  // Classes whose base clause names InvariantAuditor.
  const std::string& code = f.code;
  std::size_t i = 0;
  while ((i = find_word(code, "class", i)) != std::string::npos) {
    const std::size_t at = i;
    i += 5;
    std::size_t p2 = skip_ws(code, at + 5);
    const std::string name = ident_at(code, p2);
    if (name.empty()) continue;
    // Scan the head (up to '{' or ';') for a base clause naming the
    // auditor interface.
    std::size_t head_end = at;
    while (head_end < code.size() && code[head_end] != '{' && code[head_end] != ';') ++head_end;
    if (head_end >= code.size() || code[head_end] != '{') continue;  // fwd decl
    const std::string head = code.substr(at, head_end - at);
    const std::size_t colon = head.find(':');
    if (colon == std::string::npos) continue;
    if (head.find("InvariantAuditor", colon) == std::string::npos) continue;
    pair.classes.emplace_back(name, std::make_pair(&f, f.line_of(at)));
  }

  // Registration calls, whitespace-insensitively.
  std::string dense;
  dense.reserve(code.size());
  for (char c : code) {
    if (!std::isspace(static_cast<unsigned char>(c))) dense += c;
  }
  const auto count = [&dense](const char* needle) {
    int n = 0;
    std::size_t at = 0;
    while ((at = dense.find(needle, at)) != std::string::npos) {
      ++n;
      at += std::strlen(needle);
    }
    return n;
  };
  pair.adds += count("audits().add(this)");
  pair.removes += count("audits().remove(this)");
}

void check_aud1(const std::map<std::string, AuditorPair>& pairs,
                std::vector<Finding>& findings) {
  for (const auto& [key, pair] : pairs) {
    if (pair.classes.empty()) continue;
    const int n = static_cast<int>(pair.classes.size());
    for (const auto& [name, where] : pair.classes) {
      if (pair.adds < n) {
        findings.push_back({where.first->path, where.second, "AUD-1",
                            "auditor '" + name +
                                "' never calls audits().add(this) — its invariants are "
                                "silently unchecked"});
      } else if (pair.adds > n) {
        findings.push_back({where.first->path, where.second, "AUD-1",
                            "auditor '" + name +
                                "' registers with more than one AuditRegistry (" +
                                std::to_string(pair.adds) + " adds for " +
                                std::to_string(n) + " auditor class(es))"});
      }
      if (pair.adds != pair.removes) {
        findings.push_back({where.first->path, where.second, "AUD-1",
                            "auditor '" + name + "' has " + std::to_string(pair.adds) +
                                " audits().add(this) but " + std::to_string(pair.removes) +
                                " audits().remove(this) — the registry holds raw pointers, "
                                "unbalanced registration dangles"});
      }
    }
  }
}

// --- driver ---------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool watched_for_det1(const fs::path& p) {
  for (const fs::path& part : p.parent_path()) {
    for (const char* dir : kWatchedDirs) {
      if (part == dir) return true;
    }
  }
  return false;
}

int list_rules() {
  std::printf("osap-lint rules (suppress with '// osap-lint: allow(RULE) reason'):\n");
  for (const RuleInfo& r : kRules) {
    std::printf("  %-6s %s\n", r.id, r.summary);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: osap_lint [--list-rules] [-v] <file-or-dir>...\n");
    return 2;
  }

  // Gather and load files (sorted for stable output).
  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) files.push_back(it->path());
      }
    } else if (fs::is_regular_file(root, ec) && lintable(root)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "osap-lint: cannot read %s\n", root.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  std::vector<Finding> findings;
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "osap-lint: cannot open %s\n", path.string().c_str());
      return 2;
    }
    SourceFile f;
    f.path = path.string();
    std::ostringstream buf;
    buf << in.rdbuf();
    f.raw = buf.str();
    f.det1_watched = watched_for_det1(path);
    strip(f);
    parse_suppressions(f, findings);
    sources.push_back(std::move(f));
  }

  // Pass 1: the global set of hash-ordered state names.
  UnorderedNames names;
  for (const SourceFile& f : sources) collect_unordered_names(f, names);
  if (verbose) {
    std::printf("osap-lint: %zu files, %zu unordered members, %zu unordered accessors\n",
                sources.size(), names.vars.size(), names.fns.size());
  }

  // Pass 2: rule checks.
  std::map<std::string, AuditorPair> aud_pairs;
  for (const SourceFile& f : sources) {
    check_det1(f, names, findings);
    check_det2(f, findings);
    check_lif1(f, findings);
    check_mut1(f, findings);
    collect_aud1(f, aud_pairs);
  }
  check_aud1(aud_pairs, findings);

  // Apply suppressions (a finding's line, matched by rule).
  for (SourceFile& f : sources) {
    for (Suppression& sup : f.suppressions) {
      for (Finding& finding : findings) {
        if (finding.suppressed || finding.file != f.path) continue;
        if (finding.rule == sup.rule && finding.line == sup.applies_to) {
          finding.suppressed = true;
          sup.used = true;
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });

  int violations = 0;
  int suppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      if (verbose) {
        std::printf("%s:%d: %s: suppressed: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                    f.message.c_str());
      }
      continue;
    }
    ++violations;
    std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(), f.message.c_str());
  }
  for (const SourceFile& f : sources) {
    for (const Suppression& sup : f.suppressions) {
      if (!sup.used) {
        std::printf("%s:%d: note: allow(%s) suppresses nothing (stale suppression?)\n",
                    f.path.c_str(), sup.line, sup.rule.c_str());
      }
    }
  }
  std::printf("osap-lint: %d violation%s, %d suppressed\n", violations,
              violations == 1 ? "" : "s", suppressed);
  return violations == 0 ? 0 : 1;
}
