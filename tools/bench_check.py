#!/usr/bin/env python3
"""Bench-regression gate: diff a fresh fig2 observability dump against the
committed baseline (BENCH_fig2.json at the repo root).

The simulator is deterministic, but the gate still compares with a
tolerance rather than bit-exactly: the baseline is regenerated rarely and
small counter drift (an extra heartbeat round, an audit sweep moved by a
config tweak) is expected churn, while a 2x jump in events_processed or
VmmReclaim work is exactly the kind of silent regression the gate exists
to catch.

Wall-clock metrics (wall_ms, events_per_sec — present in the scale
baseline, BENCH_scale.json) are gated separately with a one-sided band:
runners vary wildly in speed, so only a large slowdown fails the gate
(current wall_ms above baseline * wall-tolerance, or events_per_sec
below baseline / wall-tolerance). Getting faster never fails.

Usage:
    bench_check.py BASELINE CURRENT [--tolerance 0.10] [--wall-tolerance 3.0]
    bench_check.py BASELINE --self-test

Under GitHub Actions (GITHUB_ACTIONS=true, or --github anywhere) each
gate failure is additionally emitted as a `::error` workflow annotation
so regressions surface on the PR checks tab, not just in the job log.

Exit status: 0 clean, 1 regression (or self-test failure), 2 bad input.
"""

import argparse
import copy
import json
import os
import sys


def annotate(github, title, message):
    """Emit a GitHub Actions ::error annotation (single line, escaped)."""
    if not github:
        return
    escaped = message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    print(f"::error title={title}::{escaped}")


# Wall-clock leaves: too noisy for the relative-deviation check, gated
# one-sided instead. "upper" = regression is exceeding the band upward.
WALL_KEYS = {"wall_ms": "upper", "events_per_sec": "lower"}


def flatten(dump):
    """Deterministic numeric leaves worth gating, as {dotted.key: value}."""
    out = {"events_processed": dump.get("events_processed", 0)}
    if "sim_seconds" in dump:
        out["sim_seconds"] = dump["sim_seconds"]
    for name, value in dump.get("counters", {}).items():
        out[f"counters.{name}"] = value
    for name, hp in dump.get("hot_paths", {}).items():
        out[f"hot_paths.{name}.calls"] = hp.get("calls", 0)
        out[f"hot_paths.{name}.work"] = hp.get("work", 0)
    return out


def deviation(base, cur):
    """Relative deviation with a floor so tiny counters don't dominate."""
    return abs(cur - base) / max(abs(base), 10.0)


def check(baseline, current, tolerance):
    """Return a list of (key, base, cur, deviation) regressions."""
    base_flat = flatten(baseline)
    cur_flat = flatten(current)
    problems = []
    for key, base in sorted(base_flat.items()):
        if key not in cur_flat:
            problems.append((key, base, None, float("inf")))
            continue
        dev = deviation(base, cur_flat[key])
        if dev > tolerance:
            problems.append((key, base, cur_flat[key], dev))
    for key in sorted(set(cur_flat) - set(base_flat)):
        print(f"note: new metric not in baseline (regenerate it?): {key}")
    return problems


def check_wall(baseline, current, wall_tolerance):
    """One-sided wall-clock band; returns (key, base, cur, limit) failures."""
    problems = []
    for key, side in sorted(WALL_KEYS.items()):
        if key not in baseline:
            continue
        base = baseline[key]
        cur = current.get(key)
        if cur is None:
            problems.append((key, base, None, base))
            continue
        limit = base * wall_tolerance if side == "upper" else base / wall_tolerance
        if (side == "upper" and cur > limit) or (side == "lower" and cur < limit):
            problems.append((key, base, cur, limit))
    return problems


def self_test(baseline, tolerance, wall_tolerance):
    """The gate must pass an identical dump and fail a perturbed one."""
    if check(baseline, baseline, tolerance):
        print("self-test FAILED: identical dump did not pass")
        return 1
    perturbed = copy.deepcopy(baseline)
    key = max(perturbed["counters"], key=lambda k: perturbed["counters"][k])
    perturbed["counters"][key] = int(perturbed["counters"][key] * (1 + 4 * tolerance)) + 100
    if not check(baseline, perturbed, tolerance):
        print(f"self-test FAILED: perturbing counters.{key} was not flagged")
        return 1
    dropped = copy.deepcopy(baseline)
    del dropped["counters"][key]
    if not check(baseline, dropped, tolerance):
        print(f"self-test FAILED: dropping counters.{key} was not flagged")
        return 1
    if check_wall(baseline, baseline, wall_tolerance):
        print("self-test FAILED: identical wall metrics did not pass")
        return 1
    for wall_key, side in WALL_KEYS.items():
        if wall_key not in baseline:
            continue
        slowed = copy.deepcopy(baseline)
        factor = 2 * wall_tolerance
        slowed[wall_key] = (baseline[wall_key] * factor if side == "upper"
                            else baseline[wall_key] / factor)
        if not check_wall(baseline, slowed, wall_tolerance):
            print(f"self-test FAILED: {factor:g}x slowdown in {wall_key} was not flagged")
            return 1
    print("self-test passed: identical dump accepted, regressions flagged")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="max relative deviation per metric (default 0.10)")
    ap.add_argument("--wall-tolerance", type=float, default=3.0,
                    help="one-sided slowdown factor allowed on wall-clock "
                         "metrics before failing (default 3.0; runners vary)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate itself flags an injected regression")
    ap.add_argument("--github", action="store_true",
                    default=os.environ.get("GITHUB_ACTIONS") == "true",
                    help="emit ::error annotations on failures (auto-enabled "
                         "when GITHUB_ACTIONS=true)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot load baseline {args.baseline}: {e}")
        return 2

    if args.self_test:
        return self_test(baseline, args.tolerance, args.wall_tolerance)

    if not args.current:
        print("missing CURRENT dump (or use --self-test)")
        return 2
    try:
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot load current dump {args.current}: {e}")
        return 2

    problems = check(baseline, current, args.tolerance)
    wall_problems = check_wall(baseline, current, args.wall_tolerance)
    if problems or wall_problems:
        if problems:
            print(f"bench regression vs {args.baseline} (tolerance {args.tolerance:.0%}):")
            for key, base, cur, dev in problems:
                shown = "MISSING" if cur is None else cur
                print(f"  {key}: baseline {base} -> current {shown} ({dev:.1%})")
                annotate(args.github, "bench regression",
                         f"{key}: baseline {base} -> current {shown} ({dev:.1%}) "
                         f"vs {args.baseline}")
        for key, base, cur, limit in wall_problems:
            shown = "MISSING" if cur is None else f"{cur:g}"
            print(f"  {key}: baseline {base:g} -> current {shown} "
                  f"(outside {args.wall_tolerance:g}x band, limit {limit:g})")
            annotate(args.github, "bench wall-clock regression",
                     f"{key}: baseline {base:g} -> current {shown} outside "
                     f"{args.wall_tolerance:g}x band (limit {limit:g}) "
                     f"vs {args.baseline}")
        print("If this change is intentional, regenerate the baseline:")
        if "scale" in args.baseline:
            print("  ./build/bench/cluster_scale --json=$(pwd)/BENCH_scale.json")
        elif "revoke" in args.baseline:
            print("  ./build/tools/osapd run configs/revoke.matrix --out /tmp/revoke.json --quiet")
            print("  ./tools/frontier_to_bench.py /tmp/revoke.json --out $(pwd)/BENCH_revoke.json")
        else:
            print("  ./build/bench/fig2_baseline --runs=2 --counters=$(pwd)/BENCH_fig2.json \\")
            print("      --trace=$(pwd)/BENCH_fig2_trace.json")
        return 1
    gated = len(flatten(baseline)) + sum(k in baseline for k in WALL_KEYS)
    print(f"bench gate clean: {gated} metrics within {args.tolerance:.0%} "
          f"(wall: {args.wall_tolerance:g}x band) of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
