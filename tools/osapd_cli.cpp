// osapd — the experiment-matrix sweep harness (docs/OSAPD.md).
//
//   osapd run <file.matrix> [flags]
//       Expand the matrix, shard the cells across a pool of forked
//       workers, stream ndjson progress to stdout, and finish with the
//       matrix summary JSON (per-cell records, per-group stats, the
//       fig2-style pivot).
//         --set key=v1,v2,...   replace/introduce an axis (repeatable)
//         --workers N           worker processes (default: hardware concurrency)
//         --cache-dir DIR       result cache location (default .osapd-cache)
//         --no-cache            disable the result cache entirely
//         --max-rss-mb N        per-worker RSS budget; over-budget runs
//                               abort-and-record and reschedule once
//         --out FILE            write the summary there instead of stdout
//         --quiet               suppress ndjson progress records
//       SIGINT drains in-flight cells, persists them to the cache, and
//       emits a partial summary; exit status 130. A second SIGINT kills
//       the harness immediately.
//
//   osapd expand <file.matrix> [--set ...]
//       Print each expanded cell as "<config-digest>  <canonical>"
//       without running anything.
//
//   osapd instrument <descriptor> [--counters FILE] [--trace FILE]
//       Run ONE cell in-process (descriptor syntax "k=v;k=v" or
//       "k=v,k=v") with observability files enabled, and print its
//       result record. This is the path CI uses to gate the fig2
//       representative point against BENCH_fig2.json.
//
// Flags take either `--key value` or `--key=value` form; unknown flags
// are an error, never silently ignored.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/error.hpp"
#include "core/run.hpp"
#include "osapd/aggregate.hpp"
#include "osapd/expand.hpp"
#include "osapd/matrix.hpp"
#include "osapd/record.hpp"
#include "osapd/sweep.hpp"

namespace osap {
namespace {

volatile std::sig_atomic_t g_cancel = 0;

extern "C" void on_sigint(int) {
  if (g_cancel != 0) ::_exit(130);  // second ^C: the user means it
  g_cancel = 1;
}

/// The harness wall clock, injected into the pool so the deterministic
/// library never reads real time itself (lint rule DET-2). It only ever
/// stamps wall_ms on records and the summary — it steers nothing.
double wall_now_ms() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();  // osap-lint: allow(DET-2) harness-side wall-time stamp; never feeds the simulation
  return std::chrono::duration<double, std::milli>(t).count();
}

struct Args {
  std::vector<std::pair<std::string, std::string>> flags;  // in order
  std::vector<std::string> positional;

  static Args parse(int argc, char** argv, int from) {
    Args args;
    for (int i = from; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        const std::string key = token.substr(2);
        if (const auto eq = key.find('='); eq != std::string::npos) {
          args.flags.emplace_back(key.substr(0, eq), key.substr(eq + 1));
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          args.flags.emplace_back(key, argv[++i]);
        } else {
          args.flags.emplace_back(key, "true");
        }
      } else {
        args.positional.push_back(token);
      }
    }
    return args;
  }

  /// Reject any flag outside `allowed` — a typoed flag silently running
  /// the default experiment is how sweeps cache nonsense.
  void check_allowed(const char* subcommand, const std::vector<std::string>& allowed) const {
    for (const auto& [key, v] : flags) {
      (void)v;
      bool ok = false;
      for (const std::string& a : allowed) ok = ok || key == a;
      OSAP_CHECK_MSG(ok, "osapd " << subcommand << ": unknown flag --" << key
                                  << " (run 'osapd' for usage)");
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    std::string out = fallback;
    for (const auto& [k, v] : flags) {
      if (k == key) out = v;
    }
    return out;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const std::string v = get(key, "");
    return v.empty() ? fallback : std::stod(v);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    for (const auto& [k, v] : flags) {
      (void)v;
      if (k == key) return true;
    }
    return false;
  }
};

osapd::MatrixSpec load_matrix(const Args& args) {
  OSAP_CHECK_MSG(!args.positional.empty(), "expected a .matrix file argument");
  const std::string path = args.positional[0];
  std::ifstream in(path);
  OSAP_CHECK_MSG(in, "cannot open matrix file " << path);
  osapd::MatrixSpec spec = osapd::parse_matrix(in, path);
  for (const auto& [key, v] : args.flags) {
    if (key == "set") osapd::apply_set(spec, v);
  }
  return spec;
}

int cmd_expand(const Args& args) {
  args.check_allowed("expand", {"set"});
  const std::vector<core::RunDescriptor> cells = osapd::expand(load_matrix(args));
  for (const core::RunDescriptor& d : cells) {
    std::printf("%s  %s\n", d.digest_hex().c_str(), d.canonical().c_str());
  }
  return 0;
}

int cmd_run(const Args& args) {
  args.check_allowed("run", {"set", "workers", "cache-dir", "no-cache", "max-rss-mb", "out",
                             "quiet"});
  const std::vector<core::RunDescriptor> cells = osapd::expand(load_matrix(args));

  osapd::SweepOptions opts;
  const unsigned hw = std::thread::hardware_concurrency();
  opts.pool.workers = static_cast<int>(args.num("workers", hw > 0 ? hw : 2));
  opts.pool.max_rss_bytes =
      static_cast<std::uint64_t>(args.num("max-rss-mb", 0)) * 1024 * 1024;
  opts.pool.now_ms = &wall_now_ms;
  opts.pool.cancel = &g_cancel;
  if (!args.has("no-cache")) opts.cache_dir = args.get("cache-dir", ".osapd-cache");
  if (!args.has("quiet")) opts.progress = &std::cout;

  std::signal(SIGINT, on_sigint);
  const double t0 = wall_now_ms();
  const osapd::SweepOutcome outcome = osapd::run_sweep(cells, opts);
  const double wall = wall_now_ms() - t0;
  std::signal(SIGINT, SIG_DFL);

  const auto harness = osapd::harness_counters(outcome, cells.size());
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) {
    osapd::write_summary_json(std::cout, cells, outcome.cells, outcome.cancelled, harness,
                              wall);
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    OSAP_CHECK_MSG(out.good(), "cannot write summary to " << out_path);
    osapd::write_summary_json(out, cells, outcome.cells, outcome.cancelled, harness, wall);
  }

  if (outcome.cancelled) return 130;
  for (const osapd::CellResult& cell : outcome.cells) {
    if (!cell.ok) return 1;
  }
  return 0;
}

int cmd_instrument(const Args& args) {
  args.check_allowed("instrument", {"counters", "trace"});
  OSAP_CHECK_MSG(!args.positional.empty(), "expected a descriptor argument (\"k=v;k=v\")");
  const core::RunDescriptor d =
      core::normalize_descriptor(core::RunDescriptor::parse(args.positional[0]));
  core::RunOptions ropts;
  ropts.counters_file = args.get("counters", "");
  ropts.trace_file = args.get("trace", "");
  const double t0 = wall_now_ms();
  core::ResultRecord rec = core::run_descriptor(d, ropts);
  rec.wall_ms = wall_now_ms() - t0;
  std::printf("%s\n", osapd::serialize_record(d.canonical(), rec).c_str());
  return rec.ok ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: osapd <run|expand|instrument> ...\n"
               "  run <file.matrix> [--set k=v1,v2]... [--workers N] [--cache-dir DIR]\n"
               "                    [--no-cache] [--max-rss-mb N] [--out FILE] [--quiet]\n"
               "  expand <file.matrix> [--set k=v1,v2]...\n"
               "  instrument <descriptor> [--counters FILE] [--trace FILE]\n");
  return 1;
}

}  // namespace
}  // namespace osap

int main(int argc, char** argv) {
  using namespace osap;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (cmd == "run") return cmd_run(args);
    if (cmd == "expand") return cmd_expand(args);
    if (cmd == "instrument") return cmd_instrument(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "osapd: error: %s\n", e.what());
    return 1;
  }
  return usage();
}
